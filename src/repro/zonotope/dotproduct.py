"""Dot-product and multiplication abstract transformers (Sections 4.8, 4.9).

The self-attention needs products of *pairs of zonotope variables*: the
``Q K^T`` score matrix and the ``softmax(..) V`` mixing step. For
``v1 = c1 + A1.phi + B1.eps`` and ``v2 = c2 + A2.phi + B2.eps`` (vectors of
variables sharing noise symbols), the dot product expands into

* an exact affine part    ``c1.c2 + (c1^T A2 + c2^T A1).phi + (...).eps``,
* a quadratic interaction ``(A1.phi + B1.eps) . (A2.phi + B2.eps)``

whose four symbol-pair cases are bounded by intervals and folded into a
center shift plus one fresh eps symbol per output variable.

Two bounding strategies are provided:

``fast``     the dual-norm cascade of Eq. (5): O(N (Ep + Einf)); applies to
             every case; the bound is not symmetric in the operands, and the
             ``order`` flag selects which norm the dual trick hits first for
             the mixed phi/eps cases (Table 6 ablates this; ℓ∞-first is the
             paper's default).
``precise``  the pairwise interval analysis of Eq. (6) for the eps-eps case
             only: O(N Einf^2), exploiting eps_i^2 in [0, 1]; the mixed and
             phi-phi cases still use the fast bound. This is the
             DeepT-Precise dot product.
"""

from __future__ import annotations

import time

import numpy as np

from ..trace import TRACER
from .batch import active_batch
from .multinorm import MultiNormZonotope, dual_exponent, norm_along_axis0
from .numeric import under_propagation_errstate
from .storage import fast_path_enabled

__all__ = ["zonotope_matmul", "zonotope_multiply", "DotProductConfig"]


class DotProductConfig:
    """Options for the dot-product transformer.

    Parameters
    ----------
    variant:
        ``"fast"`` (DeepT-Fast) or ``"precise"`` (DeepT-Precise eps-eps
        bound).
    order:
        ``"linf_first"`` applies the dual-norm trick to the ℓ∞-norm symbols
        first in the mixed phi/eps cases (paper default, Section 6.5);
        ``"lp_first"`` is the opposite order.
    tol:
        Quadratic-term magnitudes below this get no fresh noise symbol.
    """

    def __init__(self, variant="fast", order="linf_first", tol=0.0):
        if variant not in ("fast", "precise"):
            raise ValueError(f"unknown dot-product variant {variant!r}")
        if order not in ("linf_first", "lp_first"):
            raise ValueError(f"unknown dual-norm order {order!r}")
        self.variant = variant
        self.order = order
        self.tol = tol


def _fast_case_bound(inner_coeffs, inner_q, outer_coeffs, outer_q, pattern):
    """Eq. (5) bound for one symbol-pair case, batched over output pairs.

    ``inner_coeffs`` plays W (collapsed first with its dual norm
    ``inner_q``), ``outer_coeffs`` plays V (collapsed second with
    ``outer_q``). ``pattern`` names the einsum contraction:

    * ``"row-col"``: outputs (n, m) from x rows (E, n, k) . y cols (E, k, m)
      — inner must be the y-side array, outer the x-side array.
    * ``"col-row"``: the transposed pairing (inner = x side, outer = y
      side), used when the operand roles are swapped.

    Both einsums carry an ellipsis so the bound batches over any leading
    (e.g. per-head) variable axes shared by the operands.
    """
    if pattern == "row-col":
        # inner: (E2, ..., k, m) -> s[..., k, m]; outer: (E1, ..., n, k)
        s = norm_along_axis0(inner_coeffs, inner_q)
        t = np.einsum("...km,e...nk->e...nm", s, np.abs(outer_coeffs))
    elif pattern == "col-row":
        # inner: (E1, ..., n, k) -> s[..., n, k]; outer: (E2, ..., k, m)
        s = norm_along_axis0(inner_coeffs, inner_q)
        t = np.einsum("...nk,e...km->e...nm", s, np.abs(outer_coeffs))
    else:
        raise ValueError(pattern)
    return norm_along_axis0(t, outer_q)


def _precise_eps_bounds(x_eps, y_eps, block=8):
    """Eq. (6) interval bounds of ``(B1 eps).(B2 eps)`` per output pair.

    ``x_eps``: (E, n, k), ``y_eps``: (E, k, m). Returns (l, u) of shape
    (n, m). The full pairwise tensor M[i, j, a, b] = sum_t x[a,i,t] y[b,t,j]
    is materialized in blocks of ``block`` output rows to bound memory.
    Batched operands (leading variable axes) take the wrapper below.
    """
    n_eps, n, _ = x_eps.shape
    m = y_eps.shape[2]
    lower = np.zeros((n, m))
    upper = np.zeros((n, m))
    if n_eps == 0:
        return lower, upper
    for start in range(0, n, block):
        stop = min(start + block, n)
        # M: (rows, m, E, E)
        pairwise = np.einsum("ait,btj->ijab", x_eps[:, start:stop, :], y_eps)
        diag = np.einsum("ijaa->ija", pairwise)
        abs_sum = np.abs(pairwise).sum(axis=(2, 3))
        abs_diag = np.abs(diag).sum(axis=2)
        off = abs_sum - abs_diag                      # sum_{a != b} |M_ab|
        lower[start:stop] = np.minimum(diag, 0.0).sum(axis=2) - off
        upper[start:stop] = np.maximum(diag, 0.0).sum(axis=2) + off
    return lower, upper


def _precise_eps_bounds_batched(x_eps, y_eps, block=8):
    """Eq. (6) bounds for operands with leading batch axes.

    ``x_eps``: (E, ..., n, k), ``y_eps``: (E, ..., k, m). The pairwise
    analysis is quadratic in E, so batch slices are processed one at a time
    through the 2D routine rather than blowing up one giant einsum.
    """
    if x_eps.ndim == 3:
        return _precise_eps_bounds(x_eps, y_eps, block=block)
    batch_shape = x_eps.shape[1:-2]
    n_eps = x_eps.shape[0]
    n, k = x_eps.shape[-2:]
    m = y_eps.shape[-1]
    x_flat = x_eps.reshape((n_eps, -1, n, k))
    y_flat = y_eps.reshape((n_eps, -1, k, m))
    n_batch = x_flat.shape[1]
    lower = np.zeros((n_batch, n, m))
    upper = np.zeros((n_batch, n, m))
    for b in range(n_batch):
        lower[b], upper[b] = _precise_eps_bounds(
            x_flat[:, b], y_flat[:, b], block=block)
    return (lower.reshape(batch_shape + (n, m)),
            upper.reshape(batch_shape + (n, m)))


def _precise_eps_bounds_per_query(x, y, ledger):
    """Eq. (6) bounds inside a batch scope, query by query.

    The pairwise analysis sums |M_ab| over the *last* tensor axes, which
    numpy computes with pairwise summation — interleaved dead-slot zeros
    would change the reduction tree and break bitwise equality with the
    serial engine. Gathering each query's live rows first makes the 2D
    routine see exactly the operands the serial propagation sees.
    """
    if x.n_eps > ledger.count or y.n_eps > ledger.count:
        raise RuntimeError(
            f"zonotope has {max(x.n_eps, y.n_eps)} eps symbols but the "
            f"batch ledger frontier is {ledger.count}")
    live = ledger.live_matrix()[:x.n_eps]
    x_eps, y_eps = x.eps, y.eps            # (E, B, ..., n, k) / (..., k, m)
    lower = np.zeros(x.shape[:-1] + (y.shape[-1],))
    upper = np.zeros_like(lower)
    for b in range(ledger.batch):
        rows = np.flatnonzero(live[:, b])
        lower[b], upper[b] = _precise_eps_bounds_batched(
            x_eps[rows, b], y_eps[rows, b])
    return lower, upper


def _quadratic_bounds(x, y, config):
    """Interval bounds of the full quadratic interaction term, per output.

    ``x``: zonotope (..., n, k), ``y``: zonotope (..., k, m); returns
    (l, u) of shape (..., n, m) bounding
    (A1 phi + B1 eps)_i . (A2 phi + B2 eps)_j.
    """
    q = x.q
    bound = np.zeros(x.shape[:-1] + (y.shape[-1],))

    # phi-phi: both sides carry the ℓp norm; collapse the y side first.
    if x.n_phi and y.n_phi:
        bound = bound + _fast_case_bound(y.phi, q, x.phi, q, "row-col")

    # Mixed cases: the order flag decides which norm the dual trick
    # collapses first (the first-collapsed operand is the inner one).
    if x.n_phi and y.n_eps:
        if config.order == "linf_first":
            bound = bound + _fast_case_bound(y.eps, 1.0, x.phi, q, "row-col")
        else:
            bound = bound + _fast_case_bound(x.phi, q, y.eps, 1.0, "col-row")
    if x.n_eps and y.n_phi:
        if config.order == "linf_first":
            bound = bound + _fast_case_bound(x.eps, 1.0, y.phi, q, "col-row")
        else:
            bound = bound + _fast_case_bound(y.phi, q, x.eps, 1.0, "row-col")

    lower, upper = -bound, bound

    # eps-eps: fast cascade or the precise pairwise analysis.
    if x.n_eps and y.n_eps:
        if config.variant == "precise":
            ledger = active_batch()
            if ledger is not None:
                l_ee, u_ee = _precise_eps_bounds_per_query(x, y, ledger)
            else:
                l_ee, u_ee = _precise_eps_bounds_batched(x.eps, y.eps)
        else:
            b_ee = _fast_case_bound(y.eps, 1.0, x.eps, 1.0, "row-col")
            l_ee, u_ee = -b_ee, b_ee
        lower = lower + l_ee
        upper = upper + u_ee
    return lower, upper


def _matmul_fast_path(x, y, config):
    """Structure-aware DeepT-Fast matmul: no padding, no materialization.

    Numerically equivalent to the aligned dense route (same Eq. (5)
    cascades, reassociated), but exploits the engine's lazy representation:

    * operands are never zero-padded to a common symbol count — each
      operand's cross einsum runs over its own rows only, and the output
      block is allocated at ``max`` size directly;
    * lazy tails contribute exact cross rows by scatter instead of a dense
      einsum over one-nonzero rows;
    * every eps-side Eq. (5) cascade starts (or ends) with the dual ℓ1
      norm, which is just the per-variable ℓ1 mass — so the eps blocks
      collapse through :meth:`MultiNormZonotope.eps_l1` in O(E·N) and the
      remaining contraction is symbol-free: the eps-eps case becomes a
      single ``l1(x) @ l1(y)`` product instead of an O(E·n·k·m) einsum.
    """
    if x.n_phi != y.n_phi or x.p != y.p:
        raise ValueError("zonotopes come from different symbol spaces")
    out_shape = x.shape[:-1] + (y.shape[-1],)
    center = np.matmul(x.center, y.center)

    if x.n_phi:
        phi = (np.einsum("e...nk,...km->e...nm", x.phi, y.center)
               + np.einsum("...nk,e...km->e...nm", x.center, y.phi))
    else:
        phi = np.zeros((0,) + out_shape)

    eps = np.zeros((max(x.n_eps, y.n_eps),) + out_shape)
    cx, cy = x._eps_count, y._eps_count
    if cx:
        eps[:cx] += np.einsum("e...nk,...km->e...nm", x._dense_rows(),
                              y.center)
    if x._eps_tail is not None and len(x._eps_tail):
        x._eps_tail.scatter_cross(eps, cx, x.shape, y.center, "x")
    if cy:
        eps[:cy] += np.einsum("...nk,e...km->e...nm", x.center,
                              y._dense_rows())
    if y._eps_tail is not None and len(y._eps_tail):
        y._eps_tail.scatter_cross(eps, cy, y.shape, x.center, "y")

    q = x.q
    bound = np.zeros(out_shape)
    x_l1 = x.eps_l1() if x.n_eps else None
    y_l1 = y.eps_l1() if y.n_eps else None
    if x.n_phi and y.n_phi:
        bound += _fast_case_bound(y.phi, q, x.phi, q, "row-col")
    if x.n_phi and y.n_eps:
        if config.order == "linf_first":
            t = np.einsum("...km,e...nk->e...nm", y_l1, np.abs(x.phi))
            bound += norm_along_axis0(t, q)
        else:
            s = norm_along_axis0(x.phi, q)
            bound += np.einsum("...nk,...km->...nm", s, y_l1)
    if x.n_eps and y.n_phi:
        if config.order == "linf_first":
            t = np.einsum("...nk,e...km->e...nm", x_l1, np.abs(y.phi))
            bound += norm_along_axis0(t, q)
        else:
            s = norm_along_axis0(y.phi, q)
            bound += np.einsum("...km,...nk->...nm", s, x_l1)
    if x.n_eps and y.n_eps:
        bound += np.einsum("...nk,...km->...nm", x_l1, y_l1)

    out = MultiNormZonotope(center, phi, eps, x.p)
    return out.append_fresh_eps(bound, tol=config.tol)


@under_propagation_errstate
def zonotope_matmul(x, y, config=None):
    """Abstract matrix product of two zonotopes: (n, k) @ (k, m) -> (n, m).

    Leading variable axes batch: (..., n, k) @ (..., k, m) -> (..., n, m)
    with identical batch shapes — this is how multi-head attention runs all
    heads' score and mixing products as single einsums.

    Both operands live in the same symbol space. On the structured engine
    the fast variant takes :func:`_matmul_fast_path` (padding-free, tails
    never densified); otherwise the operands are aligned first and the
    bounds run over dense blocks. The affine part is exact; the quadratic
    interaction is folded into a center shift plus a fresh eps symbol per
    output variable.
    """
    config = config or DotProductConfig()
    if (x.ndim < 2 or y.ndim != x.ndim or x.shape[-1] != y.shape[-2]
            or x.shape[:-2] != y.shape[:-2]):
        raise ValueError(f"incompatible shapes {x.shape} @ {y.shape}")
    if not TRACER.enabled:
        return _matmul_impl(x, y, config)
    start = time.perf_counter()
    out = _matmul_impl(x, y, config)
    TRACER.record_op(f"dot-{config.variant}", out,
                     time.perf_counter() - start)
    return out


def _matmul_impl(x, y, config):
    if fast_path_enabled() and config.variant == "fast":
        return _matmul_fast_path(x, y, config)
    x, y = x.aligned_with(y)

    center = np.matmul(x.center, y.center)
    n_out_shape = x.shape[:-1] + (y.shape[-1],)

    def cross(coeff_x, coeff_y):
        """c2-weighted x-coeffs plus c1-weighted y-coeffs (exact part)."""
        parts = []
        if coeff_x.shape[0]:
            parts.append(np.einsum("e...nk,...km->e...nm", coeff_x,
                                   y.center))
        if coeff_y.shape[0]:
            parts.append(np.einsum("...nk,e...km->e...nm", x.center,
                                   coeff_y))
        if not parts:
            return np.zeros((0,) + n_out_shape)
        return parts[0] + parts[1] if len(parts) == 2 else parts[0]

    phi = cross(x.phi, y.phi) if (x.n_phi or y.n_phi) \
        else np.zeros((0,) + n_out_shape)
    eps = cross(x.eps, y.eps) if (x.n_eps or y.n_eps) \
        else np.zeros((0,) + n_out_shape)

    lower, upper = _quadratic_bounds(x, y, config)
    center = center + 0.5 * (lower + upper)
    out = MultiNormZonotope(center, phi, eps, x.p)
    return out.append_fresh_eps(0.5 * (upper - lower), tol=config.tol)


@under_propagation_errstate
def zonotope_multiply(x, y, config=None):
    """Elementwise product of two zonotopes of the same variable shape.

    This is the Section 4.9 transformer: the dot product specialized to
    1-element vectors, vectorized over all variables. Broadcasting between
    the operand shapes is supported (needed by standard layer norm, where a
    per-row 1/sigma multiplies a full row).
    """
    config = config or DotProductConfig()
    if not TRACER.enabled:
        return _multiply_impl(x, y, config)
    start = time.perf_counter()
    out = _multiply_impl(x, y, config)
    TRACER.record_op(f"multiply-{config.variant}", out,
                     time.perf_counter() - start)
    return out


def _multiply_impl(x, y, config):
    x, y = x.aligned_with(y)
    out_shape = np.broadcast_shapes(x.shape, y.shape)
    x = _broadcast_vars(x, out_shape)
    y = _broadcast_vars(y, out_shape)

    center = x.center * y.center
    phi = (x.phi * y.center + x.center * y.phi) if (x.n_phi or y.n_phi) \
        else np.zeros((0,) + out_shape)
    eps = (x.eps * y.center + x.center * y.eps) if (x.n_eps or y.n_eps) \
        else np.zeros((0,) + out_shape)

    lower, upper = _elementwise_quadratic_bounds(x, y, config)
    center = center + 0.5 * (lower + upper)
    out = MultiNormZonotope(center, phi, eps, x.p)
    return out.append_fresh_eps(0.5 * (upper - lower), tol=config.tol)


def _broadcast_vars(z, shape):
    """Broadcast a zonotope's variables (and coefficients) to ``shape``."""
    if z.shape == tuple(shape):
        return z
    center = np.broadcast_to(z.center, shape).copy()
    phi = np.broadcast_to(z.phi, (z.n_phi,) + tuple(shape)).copy()
    eps = np.broadcast_to(z.eps, (z.n_eps,) + tuple(shape)).copy()
    return MultiNormZonotope(center, phi, eps, z.p)


def _elementwise_quadratic_bounds(x, y, config):
    """Quadratic-term bounds for the elementwise product (k = 1 case)."""
    q = x.q

    def fast_pair(cx, qx, cy, qy):
        # |sum over symbols| <= ||cy||_{qy per var} * ... degenerate k=1
        # cascade: inner norm collapses one operand, outer the other.
        s_inner = norm_along_axis0(cy, qy)
        t = s_inner * np.abs(cx)
        return norm_along_axis0(t, qx)

    bound = np.zeros(x.shape)
    if x.n_phi and y.n_phi:
        bound = bound + fast_pair(x.phi, q, y.phi, q)
    if x.n_phi and y.n_eps:
        if config.order == "linf_first":
            bound = bound + fast_pair(x.phi, q, y.eps, 1.0)
        else:
            bound = bound + fast_pair(y.eps, 1.0, x.phi, q)
    if x.n_eps and y.n_phi:
        if config.order == "linf_first":
            bound = bound + fast_pair(y.phi, q, x.eps, 1.0)
        else:
            bound = bound + fast_pair(x.eps, 1.0, y.phi, q)
    lower, upper = -bound, bound

    if x.n_eps and y.n_eps:
        if config.variant == "precise":
            # Pairwise matrix per variable: M[a, b, var] = Bx[a] By[b].
            pairwise = np.einsum("a...,b...->ab...", x.eps, y.eps)
            diag = np.einsum("aa...->a...", pairwise)
            abs_sum = np.abs(pairwise).sum(axis=(0, 1))
            off = abs_sum - np.abs(diag).sum(axis=0)
            l_ee = np.minimum(diag, 0.0).sum(axis=0) - off
            u_ee = np.maximum(diag, 0.0).sum(axis=0) + off
        else:
            b_ee = fast_pair(x.eps, 1.0, y.eps, 1.0)
            l_ee, u_ee = -b_ee, b_ee
        lower = lower + l_ee
        upper = upper + u_ee
    return lower, upper
