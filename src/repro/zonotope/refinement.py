"""Softmax-sum Zonotope refinement (Section 5.3, Appendix A.1).

The concrete softmax outputs of a row always satisfy ``sum_j y_j = 1``, but
the abstract transformer's output zonotope admits instantiations violating
it. The refinement intersects the zonotope with that equality constraint,
following Ghorbal et al.'s constrained-zonotope construction. With

    D := 1 - sum_j y_j   (an affine form over the noise symbols)

the constraint set is exactly ``D = 0``, so for any scalar ``s`` the form
``y_i' = y_i + s . D`` agrees with ``y_i`` on the constraint set. Two
refinements are applied per softmax row:

1. every row variable is replaced by ``y_i' = y_i + s_i . D`` where ``s_i``
   minimizes the noise-coefficient mass ``||alpha'||_1 + ||beta'||_1``
   (the weighted-median slope-walk of Appendix A.1). Candidates that would
   zero a phi coefficient are excluded (per the paper, to preserve the
   input-region correlation) and ``s_i = 0`` is always admitted, so a
   variable's coefficient mass never grows. The paper optimizes ``y_1`` this
   way and pins the remaining variables to the pivot-eliminating
   substitution ``s_i = -beta_i_k / beta_D_k`` (one of our candidate
   breakpoints); optimizing every variable is the same construction with a
   uniformly-at-least-as-tight choice.
2. the constraint ``D = 0`` is solved for each eps symbol with significant
   coefficient, restricting its range inside [-1, 1]; tightened symbols are
   rewritten as ``eps = mid + half * eps_new`` so downstream transformers
   keep the [-1, 1] invariant.

Step 2's tightenings are also *returned* (as :class:`EpsRewrite` records) so
the caller can apply the identical rewrite to every other live zonotope of
the propagation — symbols are shared, and applying the rewrite everywhere
preserves correlations (applying it to a subset is still sound: it merely
decorrelates the rewritten copies).
"""

from __future__ import annotations

import time

from dataclasses import dataclass

import numpy as np

from ..trace import TRACER
from .multinorm import MultiNormZonotope

__all__ = ["EpsRewrite", "apply_eps_rewrites", "refine_softmax_rows",
           "minimize_coefficient_mass"]

_PIVOT_TOL = 1e-9
# Only report a tightening if it shrinks the symbol range by at least this
# fraction (avoids churning on no-op rewrites).
_SHRINK_TOL = 1e-6


@dataclass(frozen=True)
class EpsRewrite:
    """Replace eps symbol ``index`` by ``mid + half * eps_fresh``."""

    index: int
    mid: float
    half: float


def apply_eps_rewrites(zonotope, rewrites):
    """Apply symbol-range rewrites to a zonotope (reusing the columns).

    For each rewrite, the center absorbs ``coeff * mid`` and the symbol's
    coefficient row is scaled by ``half``; the row then represents the
    fresh [-1, 1] symbol. Symbol indices beyond the zonotope's eps block
    (fresh symbols it never saw) are ignored.
    """
    if not rewrites:
        return zonotope
    center = zonotope.center.copy()
    eps = zonotope.eps.copy()
    for rewrite in rewrites:
        if rewrite.index >= eps.shape[0]:
            continue
        row = eps[rewrite.index]
        center += row * rewrite.mid
        eps[rewrite.index] = row * rewrite.half
    return MultiNormZonotope(center, zonotope.phi, eps, zonotope.p)


def minimize_coefficient_mass(base_coeffs, direction_coeffs, n_phi):
    """Appendix A.1: minimize ``f(s) = sum_t |r_t + s_t s|`` over ``s``.

    ``base_coeffs`` (r) and ``direction_coeffs`` (s_t) are the concatenated
    [phi | eps] coefficient vectors of the variable and of ``D``; the first
    ``n_phi`` entries are phi coefficients, whose breakpoints are excluded
    from the candidate set. ``s = 0`` is always admitted. Returns the chosen
    ``s``.
    """
    r = np.asarray(base_coeffs, dtype=np.float64)
    s = np.asarray(direction_coeffs, dtype=np.float64)
    return _minimize_scalar(r, s, np.arange(len(r)) < n_phi)


def _minimize_scalar(r, s, is_phi):
    """Scalar slope-walk for one variable (``is_phi`` flags per entry).

    The objective is convex piecewise-linear with breakpoints at
    ``-r_t / s_t``; the global minimizer is found by the O(T log T)
    slope-walk, and if it is phi-derived the best allowed candidate among
    {adjacent allowed breakpoints, 0} is taken (by convexity the restricted
    optimum over breakpoints is adjacent to the global one). Entries with
    ``s_t = 0`` only shift the objective by a constant and are dropped.
    """
    active = np.abs(s) > 0
    if not np.any(active):
        return 0.0
    breaks = -r[active] / s[active]
    weights = np.abs(s[active])
    is_phi = is_phi[active]

    order = np.argsort(breaks)
    breaks = breaks[order]
    weights = weights[order]
    is_phi = is_phi[order]

    cumulative = -weights.sum() + 2.0 * np.cumsum(weights)
    opt_pos = min(int(np.searchsorted(cumulative, 0.0)), len(breaks) - 1)

    def objective(value):
        return np.abs(r + s * value).sum()

    if not is_phi[opt_pos]:
        candidate = float(breaks[opt_pos])
    else:
        allowed = np.flatnonzero(~is_phi)
        neighbours = []
        left = allowed[allowed < opt_pos]
        right = allowed[allowed > opt_pos]
        if len(left):
            neighbours.append(float(breaks[left[-1]]))
        if len(right):
            neighbours.append(float(breaks[right[0]]))
        candidate = min(neighbours, key=objective) if neighbours else 0.0
    return candidate if objective(candidate) < objective(0.0) else 0.0


def _minimize_mass_rows(r, s, is_phi):
    """Vectorized step 1 over the ``m`` variables of one softmax row.

    ``r``: (Ta, m) [phi | eps] coefficients of the row variables, already
    gathered down to the symbols with a nonzero D coefficient; ``s``:
    (Ta,) the matching nonzero D coefficients; ``is_phi``: (Ta,) bool.
    Returns the chosen ``s`` per variable. The fast path finds the global
    weighted-median breakpoint per column; columns whose optimum is
    phi-derived fall back to the scalar routine. (Symbols with a zero D
    coefficient only add a constant to every mass comparison, so dropping
    them before the call changes nothing.)
    """
    n_vars = r.shape[1]
    result = np.zeros(n_vars)
    if not len(s):
        return result
    breaks = -r / s[:, None]                 # (Ta, m)
    weights = np.abs(s)

    order = np.argsort(breaks, axis=0)
    sorted_breaks = np.take_along_axis(breaks, order, axis=0)
    sorted_weights = weights[order]
    sorted_is_phi = is_phi[order]
    cumulative = -weights.sum() + 2.0 * np.cumsum(sorted_weights, axis=0)
    opt_pos = np.minimum((cumulative < 0).sum(axis=0), len(s) - 1)

    cols = np.arange(n_vars)
    chosen = sorted_breaks[opt_pos, cols]
    phi_hit = sorted_is_phi[opt_pos, cols]

    # Never-worse-than-zero guard, vectorized.
    mass_at = np.abs(r + s[:, None] * chosen[None, :]).sum(axis=0)
    mass_at_zero = np.abs(r).sum(axis=0)
    chosen = np.where(mass_at < mass_at_zero, chosen, 0.0)

    result[:] = chosen
    for col in np.flatnonzero(phi_hit):
        result[col] = _minimize_scalar(r[:, col], s, is_phi)
    return result


def _tightenings_from_constraint(d_center, d_phi_mass, d_eps):
    """Step 2: per-symbol range restrictions from ``D = 0``.

    Solving ``0 = c_D + alpha_D.phi + beta_D.eps`` for ``eps_m`` restricts
    its range to ``[(-c_D - R_m)/beta_m, (-c_D + R_m)/beta_m]`` (sorted),
    where ``R_m`` is the dual-norm mass of the remaining terms. Returns a
    dict ``index -> (a, b)`` intersected with [-1, 1].
    """
    abs_coeffs = np.abs(d_eps)
    significant = np.flatnonzero(abs_coeffs > _PIVOT_TOL)
    if not len(significant):
        return {}
    rest = d_phi_mass + abs_coeffs.sum() - abs_coeffs[significant]
    a = (-d_center - rest) / d_eps[significant]
    b = (-d_center + rest) / d_eps[significant]
    lo = np.maximum(np.minimum(a, b), -1.0)
    hi = np.minimum(np.maximum(a, b), 1.0)
    keep = hi - lo < 2.0 - _SHRINK_TOL
    return {int(m): (float(l), float(h))
            for m, l, h in zip(significant[keep], lo[keep], hi[keep])}


def refine_softmax_rows(z):
    """Refine an (n, m) softmax-output zonotope row by row.

    Returns ``(refined_zonotope, rewrites)``. Numerically empty tightened
    ranges (impossible for sound inputs) are collapsed to their midpoint.
    """
    if z.ndim != 2:
        raise ValueError(f"expected an (n, m) zonotope, got {z.shape}")
    if not TRACER.enabled:
        return _refine_impl(z)
    start = time.perf_counter()
    out, rewrites = _refine_impl(z)
    TRACER.record_op("softmax-sum-refine", out,
                     time.perf_counter() - start, n_rewrites=len(rewrites))
    return out, rewrites


def _refine_impl(z):
    center = z.center.copy()
    phi = z.phi.copy()
    eps = z.eps.copy()
    n_phi = z.n_phi
    from .multinorm import norm_along_axis0

    # Affine form of every row's D at once; each row then gathers only the
    # symbols that actually touch it (the per-row sparsity is what makes
    # softmax refinement cheap even with thousands of live symbols).
    d_center_all = 1.0 - center.sum(axis=1)
    d_phi_all = -phi.sum(axis=2)              # (P, n)
    d_eps_all = -eps.sum(axis=2)              # (T, n)
    d_phi_mass_all = (norm_along_axis0(d_phi_all, z.q)
                      if n_phi else np.zeros(z.shape[0]))

    combined = {}
    for i in range(z.shape[0]):
        d_center = d_center_all[i]
        d_phi = d_phi_all[:, i]
        d_eps = d_eps_all[:, i]
        if np.abs(d_eps).max(initial=0.0) <= _PIVOT_TOL:
            continue

        # Step 1: per-variable mass-minimizing combination with D,
        # restricted to the symbols with a nonzero D coefficient.
        phi_active = np.flatnonzero(d_phi)
        eps_active = np.flatnonzero(d_eps)
        r = np.concatenate([phi[phi_active, i], eps[eps_active, i]], axis=0)
        s = np.concatenate([d_phi[phi_active], d_eps[eps_active]])
        is_phi = np.concatenate([np.ones(len(phi_active), dtype=bool),
                                 np.zeros(len(eps_active), dtype=bool)])
        s_values = _minimize_mass_rows(r, s, is_phi)
        center[i] += s_values * d_center
        if len(phi_active):
            phi[phi_active, i] += np.outer(d_phi[phi_active], s_values)
        eps[eps_active, i] += np.outer(d_eps[eps_active], s_values)

        # Step 2: symbol tightenings from D = 0 (D is unchanged by step 1
        # on the constraint set, and its affine form is fixed).
        for idx, (lo, hi) in _tightenings_from_constraint(
                d_center, d_phi_mass_all[i], d_eps).items():
            if idx in combined:
                prev_lo, prev_hi = combined[idx]
                combined[idx] = (max(lo, prev_lo), min(hi, prev_hi))
            else:
                combined[idx] = (lo, hi)

    rewrites = []
    for idx, (lo, hi) in sorted(combined.items()):
        if hi < lo:  # numerically empty; collapse to the midpoint
            lo = hi = 0.5 * (lo + hi)
        rewrites.append(EpsRewrite(index=idx, mid=0.5 * (lo + hi),
                                   half=0.5 * (hi - lo)))
        # Applied in place on the copied arrays (same update
        # apply_eps_rewrites performs, minus a second full-block copy).
        row = eps[idx]
        center += row * rewrites[-1].mid
        eps[idx] = row * rewrites[-1].half
    return MultiNormZonotope(center, phi, eps, z.p), rewrites
