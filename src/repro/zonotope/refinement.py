"""Softmax-sum Zonotope refinement (Section 5.3, Appendix A.1).

The concrete softmax outputs of a row always satisfy ``sum_j y_j = 1``, but
the abstract transformer's output zonotope admits instantiations violating
it. The refinement intersects the zonotope with that equality constraint,
following Ghorbal et al.'s constrained-zonotope construction. With

    D := 1 - sum_j y_j   (an affine form over the noise symbols)

the constraint set is exactly ``D = 0``, so for any scalar ``s`` the form
``y_i' = y_i + s . D`` agrees with ``y_i`` on the constraint set. Two
refinements are applied per softmax row:

1. every row variable is replaced by ``y_i' = y_i + s_i . D`` where ``s_i``
   minimizes the noise-coefficient mass ``||alpha'||_1 + ||beta'||_1``
   (the weighted-median slope-walk of Appendix A.1). Candidates that would
   zero a phi coefficient are excluded (per the paper, to preserve the
   input-region correlation) and ``s_i = 0`` is always admitted, so a
   variable's coefficient mass never grows. The paper optimizes ``y_1`` this
   way and pins the remaining variables to the pivot-eliminating
   substitution ``s_i = -beta_i_k / beta_D_k`` (one of our candidate
   breakpoints); optimizing every variable is the same construction with a
   uniformly-at-least-as-tight choice.
2. the constraint ``D = 0`` is solved for each eps symbol with significant
   coefficient, restricting its range inside [-1, 1]; tightened symbols are
   rewritten as ``eps = mid + half * eps_new`` so downstream transformers
   keep the [-1, 1] invariant.

Step 2's tightenings are also *returned* (as :class:`EpsRewrite` records) so
the caller can apply the identical rewrite to every other live zonotope of
the propagation — symbols are shared, and applying the rewrite everywhere
preserves correlations (applying it to a subset is still sound: it merely
decorrelates the rewritten copies).
"""

from __future__ import annotations

import time

from dataclasses import dataclass

import numpy as np

from ..trace import TRACER
from .batch import active_batch
from .multinorm import MultiNormZonotope

__all__ = ["EpsRewrite", "apply_eps_rewrites", "refine_softmax_rows",
           "minimize_coefficient_mass"]

_PIVOT_TOL = 1e-9
# Only report a tightening if it shrinks the symbol range by at least this
# fraction (avoids churning on no-op rewrites).
_SHRINK_TOL = 1e-6


@dataclass(frozen=True)
class EpsRewrite:
    """Replace eps symbol ``index`` by ``mid + half * eps_fresh``.

    ``query`` is ``None`` for serial rewrites; in a batched propagation it
    names the query whose symbol was tightened, and the rewrite applies
    only to that query's block of the stacked variable axis (other queries
    share the slot but own independent symbols).
    """

    index: int
    mid: float
    half: float
    query: int = None


def apply_eps_rewrites(zonotope, rewrites):
    """Apply symbol-range rewrites to a zonotope (reusing the columns).

    For each rewrite, the center absorbs ``coeff * mid`` and the symbol's
    coefficient row is scaled by ``half``; the row then represents the
    fresh [-1, 1] symbol. Symbol indices beyond the zonotope's eps block
    (fresh symbols it never saw) are ignored. Batched rewrites touch only
    the owning query's slice of the leading (batch-carrying) variable
    axis.
    """
    if not rewrites:
        return zonotope
    center = zonotope.center.copy()
    eps = zonotope.eps.copy()
    for rewrite in rewrites:
        if rewrite.index >= eps.shape[0]:
            continue
        if rewrite.query is None:
            row = eps[rewrite.index]
            center += row * rewrite.mid
            eps[rewrite.index] = row * rewrite.half
        else:
            ledger = active_batch()
            if ledger is None:
                raise RuntimeError(
                    "per-query eps rewrite applied outside a batch scope")
            width = zonotope.shape[0] // ledger.batch
            block = slice(rewrite.query * width, (rewrite.query + 1) * width)
            row = eps[rewrite.index, block]
            center[block] += row * rewrite.mid
            eps[rewrite.index, block] = row * rewrite.half
    return MultiNormZonotope(center, zonotope.phi, eps, zonotope.p)


def minimize_coefficient_mass(base_coeffs, direction_coeffs, n_phi):
    """Appendix A.1: minimize ``f(s) = sum_t |r_t + s_t s|`` over ``s``.

    ``base_coeffs`` (r) and ``direction_coeffs`` (s_t) are the concatenated
    [phi | eps] coefficient vectors of the variable and of ``D``; the first
    ``n_phi`` entries are phi coefficients, whose breakpoints are excluded
    from the candidate set. ``s = 0`` is always admitted. Returns the chosen
    ``s``.
    """
    r = np.asarray(base_coeffs, dtype=np.float64)
    s = np.asarray(direction_coeffs, dtype=np.float64)
    return _minimize_scalar(r, s, np.arange(len(r)) < n_phi)


def _minimize_scalar(r, s, is_phi):
    """Scalar slope-walk for one variable (``is_phi`` flags per entry).

    The objective is convex piecewise-linear with breakpoints at
    ``-r_t / s_t``; the global minimizer is found by the O(T log T)
    slope-walk, and if it is phi-derived the best allowed candidate among
    {adjacent allowed breakpoints, 0} is taken (by convexity the restricted
    optimum over breakpoints is adjacent to the global one). Entries with
    ``s_t = 0`` only shift the objective by a constant and are dropped.
    """
    active = np.abs(s) > 0
    if not np.any(active):
        return 0.0
    breaks = -r[active] / s[active]
    weights = np.abs(s[active])
    is_phi = is_phi[active]

    order = np.argsort(breaks)
    breaks = breaks[order]
    weights = weights[order]
    is_phi = is_phi[order]

    cumulative = -weights.sum() + 2.0 * np.cumsum(weights)
    opt_pos = min(int(np.searchsorted(cumulative, 0.0)), len(breaks) - 1)

    def objective(value):
        return np.abs(r + s * value).sum()

    if not is_phi[opt_pos]:
        candidate = float(breaks[opt_pos])
    else:
        allowed = np.flatnonzero(~is_phi)
        neighbours = []
        left = allowed[allowed < opt_pos]
        right = allowed[allowed > opt_pos]
        if len(left):
            neighbours.append(float(breaks[left[-1]]))
        if len(right):
            neighbours.append(float(breaks[right[0]]))
        candidate = min(neighbours, key=objective) if neighbours else 0.0
    return candidate if objective(candidate) < objective(0.0) else 0.0


def _minimize_mass_groups(r, s, is_phi):
    """Step 1 over a *group* of softmax rows with equal active-set sizes.

    ``r``: (R, Ta, m) stacked per-row coefficient gathers; ``s``: (R, Ta)
    stacked D coefficients; ``is_phi``: (Ta,) — identical across the group
    because every row gathers ``len(phi_active)`` phi entries first. Each
    lane computation (argsort, cumsum, last-/middle-axis sums) reduces
    per-row in exactly the order of the 2D routine, so the returned
    (R, m) choices are bitwise what :func:`_minimize_mass_rows` yields
    row by row.
    """
    n_rows, n_active, n_vars = r.shape
    breaks = -r / s[:, :, None]                  # (R, Ta, m)
    weights = np.abs(s)                          # (R, Ta)

    order = np.argsort(breaks, axis=1)
    sorted_breaks = np.take_along_axis(breaks, order, axis=1)
    sorted_weights = np.take_along_axis(
        np.broadcast_to(weights[:, :, None], breaks.shape), order, axis=1)
    sorted_is_phi = is_phi[order]
    cumulative = (-weights.sum(axis=1)[:, None, None]
                  + 2.0 * np.cumsum(sorted_weights, axis=1))
    opt_pos = np.minimum((cumulative < 0).sum(axis=1), n_active - 1)

    rows_ix = np.arange(n_rows)[:, None]
    cols_ix = np.arange(n_vars)[None, :]
    chosen = sorted_breaks[rows_ix, opt_pos, cols_ix]
    phi_hit = sorted_is_phi[rows_ix, opt_pos, cols_ix]

    mass_at = np.abs(r + s[:, :, None] * chosen[:, None, :]).sum(axis=1)
    mass_at_zero = np.abs(r).sum(axis=1)
    result = np.where(mass_at < mass_at_zero, chosen, 0.0)

    for row, col in zip(*np.nonzero(phi_hit)):
        result[row, col] = _minimize_scalar(r[row, :, col], s[row], is_phi)
    return result


def _minimize_mass_rows(r, s, is_phi):
    """Vectorized step 1 over the ``m`` variables of one softmax row.

    ``r``: (Ta, m) [phi | eps] coefficients of the row variables, already
    gathered down to the symbols with a nonzero D coefficient; ``s``:
    (Ta,) the matching nonzero D coefficients; ``is_phi``: (Ta,) bool.
    Returns the chosen ``s`` per variable. The fast path finds the global
    weighted-median breakpoint per column; columns whose optimum is
    phi-derived fall back to the scalar routine. (Symbols with a zero D
    coefficient only add a constant to every mass comparison, so dropping
    them before the call changes nothing.)
    """
    n_vars = r.shape[1]
    result = np.zeros(n_vars)
    if not len(s):
        return result
    breaks = -r / s[:, None]                 # (Ta, m)
    weights = np.abs(s)

    order = np.argsort(breaks, axis=0)
    sorted_breaks = np.take_along_axis(breaks, order, axis=0)
    sorted_weights = weights[order]
    sorted_is_phi = is_phi[order]
    cumulative = -weights.sum() + 2.0 * np.cumsum(sorted_weights, axis=0)
    opt_pos = np.minimum((cumulative < 0).sum(axis=0), len(s) - 1)

    cols = np.arange(n_vars)
    chosen = sorted_breaks[opt_pos, cols]
    phi_hit = sorted_is_phi[opt_pos, cols]

    # Never-worse-than-zero guard, vectorized.
    mass_at = np.abs(r + s[:, None] * chosen[None, :]).sum(axis=0)
    mass_at_zero = np.abs(r).sum(axis=0)
    chosen = np.where(mass_at < mass_at_zero, chosen, 0.0)

    result[:] = chosen
    for col in np.flatnonzero(phi_hit):
        result[col] = _minimize_scalar(r[:, col], s, is_phi)
    return result


def _tightenings_from_constraint(d_center, d_phi_mass, d_eps, live_idx=None):
    """Step 2: per-symbol range restrictions from ``D = 0``.

    Solving ``0 = c_D + alpha_D.phi + beta_D.eps`` for ``eps_m`` restricts
    its range to ``[(-c_D - R_m)/beta_m, (-c_D + R_m)/beta_m]`` (sorted),
    where ``R_m`` is the dual-norm mass of the remaining terms. Returns a
    dict ``index -> (a, b)`` intersected with [-1, 1]. ``live_idx``
    (batched propagation) restricts the total-mass sum to the owning
    query's live slots so the pairwise summation sees the serial operand
    sequence.
    """
    abs_coeffs = np.abs(d_eps)
    significant = np.flatnonzero(abs_coeffs > _PIVOT_TOL)
    if not len(significant):
        return {}
    total = (abs_coeffs.sum() if live_idx is None
             else abs_coeffs[live_idx].sum())
    rest = d_phi_mass + total - abs_coeffs[significant]
    a = (-d_center - rest) / d_eps[significant]
    b = (-d_center + rest) / d_eps[significant]
    lo = np.maximum(np.minimum(a, b), -1.0)
    hi = np.minimum(np.maximum(a, b), 1.0)
    keep = hi - lo < 2.0 - _SHRINK_TOL
    return {int(m): (float(l), float(h))
            for m, l, h in zip(significant[keep], lo[keep], hi[keep])}


def refine_softmax_rows(z):
    """Refine an (n, m) softmax-output zonotope row by row.

    Returns ``(refined_zonotope, rewrites)``. Numerically empty tightened
    ranges (impossible for sound inputs) are collapsed to their midpoint.
    """
    if z.ndim != 2:
        raise ValueError(f"expected an (n, m) zonotope, got {z.shape}")
    if not TRACER.enabled:
        return _refine_impl(z)
    start = time.perf_counter()
    out, rewrites = _refine_impl(z)
    TRACER.record_op("softmax-sum-refine", out,
                     time.perf_counter() - start, n_rewrites=len(rewrites))
    return out, rewrites


# Upper bound on stacked slope-walk temporaries (elements per chunk): keeps
# the grouped refinement's working set around a few MB regardless of batch
# size or symbol cap.
_GROUP_CHUNK_ELEMS = 1 << 21


def _refine_group_step1(center, phi, eps, d_phi_all, d_eps_all,
                        d_center_all, row_list, len_phi, len_eps, n_vars):
    """Step 1 for one chunk of rows sharing active-set sizes, in place.

    Every gather is index-pure and ``np.nonzero`` on the (rows, symbols)
    mask emits row-major pairs, i.e. exactly each row's ``flatnonzero``
    order; the flat (symbol, row) scatter pairs are unique, so the fancy
    in-place adds perform exactly one per-element ``+=`` — the same
    arithmetic as the per-row ``np.outer`` updates.
    """
    rows = np.asarray(row_list)
    local_p, pt = np.nonzero(d_phi_all[:, rows].T)
    local_e, et = np.nonzero(d_eps_all[:, rows].T)
    prow = rows[local_p]
    erow = rows[local_e]
    r_grp = np.concatenate([
        phi[pt, prow].reshape(len(rows), len_phi, n_vars),
        eps[et, erow].reshape(len(rows), len_eps, n_vars)], axis=1)
    s_grp = np.concatenate([
        d_phi_all[pt, prow].reshape(len(rows), len_phi),
        d_eps_all[et, erow].reshape(len(rows), len_eps)], axis=1)
    is_phi = np.concatenate([np.ones(len_phi, dtype=bool),
                             np.zeros(len_eps, dtype=bool)])
    if len(rows) == 1:
        values = _minimize_mass_rows(r_grp[0], s_grp[0], is_phi)[None]
    else:
        values = _minimize_mass_groups(r_grp, s_grp, is_phi)

    center[rows] += values * d_center_all[rows, None]
    if len_phi:
        phi[pt, prow] += (s_grp[:, :len_phi].reshape(-1, 1)
                          * values[local_p])
    if len_eps:
        eps[et, erow] += (s_grp[:, len_phi:].reshape(-1, 1)
                          * values[local_e])


def _combined_tightenings(refinable, d_center_all, d_phi_mass_all,
                          d_eps_all, rows_per_query, live_idx_of, ledger):
    """Step 2 over all refinable rows: intersected per-symbol ranges.

    Stacked evaluation of :func:`_tightenings_from_constraint`'s
    arithmetic, grouped by significant-symbol count; the per-element
    operations and the per-row (pairwise) mass sums are identical, so the
    intervals are bitwise the per-row results. Interval intersection
    (max/min) is commutative, so grouping never changes the outcome.
    """
    combined = {}
    if not len(refinable):
        return combined
    # C-contiguous rows: the per-row mass sums must reduce over a
    # contiguous axis so numpy applies the same pairwise summation the
    # per-row routine sees on its freshly-allocated |d_eps| vectors.
    abs_all = np.ascontiguousarray(np.abs(d_eps_all[:, refinable]).T)
    sig_mask = abs_all > _PIVOT_TOL
    owners = [int(i) // rows_per_query for i in refinable]
    if ledger is None:
        totals = abs_all.sum(axis=1)
    else:
        # Live-slot-gathered masses, grouped by live count so each group
        # is one contiguous (rows, L) gather + pairwise row sum — bitwise
        # the per-row ``abs[live_idx].sum()``.
        totals = np.empty(len(refinable))
        live_groups = {}
        for r, owner in enumerate(owners):
            live_groups.setdefault(len(live_idx_of[owner]), []).append(r)
        for live_count, members in live_groups.items():
            members = np.asarray(members)
            if not live_count:
                totals[members] = 0.0
                continue
            idx = np.stack([live_idx_of[owners[r]] for r in members])
            totals[members] = abs_all[members[:, None], idx].sum(axis=1)
    sig_groups = {}
    for r, count in enumerate(sig_mask.sum(axis=1)):
        if count:
            sig_groups.setdefault(int(count), []).append(r)
    for count, member_list in sig_groups.items():
        members = np.asarray(member_list)
        sig_idx = np.nonzero(sig_mask[members])[1].reshape(-1, count)
        rows = refinable[members]
        abs_sig = abs_all[members[:, None], sig_idx]
        d_eps_sig = d_eps_all[sig_idx, rows[:, None]]
        rest = ((d_phi_mass_all[rows] + totals[members])[:, None]
                - abs_sig)
        neg_center = -d_center_all[rows][:, None]
        a = (neg_center - rest) / d_eps_sig
        b = (neg_center + rest) / d_eps_sig
        lo = np.maximum(np.minimum(a, b), -1.0)
        hi = np.minimum(np.maximum(a, b), 1.0)
        keep = hi - lo < 2.0 - _SHRINK_TOL
        for local, k in zip(*np.nonzero(keep)):
            key = (owners[members[local]], int(sig_idx[local, k]))
            pair = (float(lo[local, k]), float(hi[local, k]))
            if key in combined:
                prev_lo, prev_hi = combined[key]
                combined[key] = (max(pair[0], prev_lo),
                                 min(pair[1], prev_hi))
            else:
                combined[key] = pair
    return combined


def _refine_impl(z):
    center = z.center.copy()
    phi = z.phi.copy()
    eps = z.eps.copy()
    n_phi = z.n_phi
    from .multinorm import norm_along_axis0

    # In a batched propagation the flattened softmax rows are
    # query-contiguous: row i belongs to query i // rows_per_query, and
    # symbol tightenings must stay per-query (queries share symbol slots
    # but own independent symbols).
    ledger = active_batch()
    if ledger is not None:
        rows_per_query = z.shape[0] // ledger.batch
        live = ledger.live_matrix()[:z.n_eps]
        live_idx_of = [np.flatnonzero(live[:, b])
                       for b in range(ledger.batch)]
    else:
        rows_per_query = z.shape[0]
        live_idx_of = [None]

    # Affine form of every row's D at once; each row then gathers only the
    # symbols that actually touch it (the per-row sparsity is what makes
    # softmax refinement cheap even with thousands of live symbols).
    d_center_all = 1.0 - center.sum(axis=1)
    d_phi_all = -phi.sum(axis=2)              # (P, n)
    d_eps_all = -eps.sum(axis=2)              # (T, n)
    d_phi_mass_all = (norm_along_axis0(d_phi_all, z.q)
                      if n_phi else np.zeros(z.shape[0]))

    # Step 1, grouped: rows with equal (|phi_active|, |eps_active|) share
    # one stacked slope-walk (:func:`_minimize_mass_groups`) and one flat
    # fancy-indexed gather/scatter. Grouping is safe because step 1 only
    # touches row ``i``'s own slices and step 2 reads the *original* D
    # forms — rows never observe each other, so evaluation order is free;
    # and step 2's interval intersection (max/min) is commutative. Every
    # gather is index-pure and ``np.nonzero`` on the (rows, symbols) mask
    # emits row-major pairs, i.e. exactly each row's ``flatnonzero`` order.
    refinable = np.flatnonzero(
        np.abs(d_eps_all).max(axis=0, initial=0.0) > _PIVOT_TOL)
    n_vars = z.shape[1]

    groups = {}
    if len(refinable):
        phi_counts = np.count_nonzero(d_phi_all[:, refinable], axis=0)
        eps_counts = np.count_nonzero(d_eps_all[:, refinable], axis=0)
        for row, lp, le in zip(refinable, phi_counts, eps_counts):
            groups.setdefault((int(lp), int(le)), []).append(int(row))

    for (len_phi, len_eps), row_list in groups.items():
        # Chunk wide groups so the stacked (rows, active, vars) slope-walk
        # temporaries stay cache-sized — each row's computation is
        # independent, so chunking never changes a bit, only the peak
        # working set (a stacked batch at a large symbol cap would
        # otherwise materialize hundreds of MB and thrash).
        per_row = max(1, (len_phi + len_eps) * n_vars)
        chunk = max(1, _GROUP_CHUNK_ELEMS // per_row)
        for start in range(0, len(row_list), chunk):
            _refine_group_step1(center, phi, eps, d_phi_all, d_eps_all,
                                d_center_all, row_list[start:start + chunk],
                                len_phi, len_eps, n_vars)

    # Step 2: symbol tightenings from D = 0 (D is unchanged by step 1 on
    # the constraint set, and its affine form is fixed). Rows with equal
    # significant-symbol counts share one stacked evaluation of
    # :func:`_tightenings_from_constraint`'s arithmetic; the per-element
    # operations and the per-row (pairwise) mass sums are identical, so
    # the intervals are bitwise the per-row results.
    combined = _combined_tightenings(refinable, d_center_all, d_phi_mass_all,
                                     d_eps_all, rows_per_query, live_idx_of,
                                     ledger)

    rewrites = []
    for (owner, idx), (lo, hi) in sorted(combined.items()):
        if hi < lo:  # numerically empty; collapse to the midpoint
            lo = hi = 0.5 * (lo + hi)
        rewrites.append(EpsRewrite(
            index=idx, mid=0.5 * (lo + hi), half=0.5 * (hi - lo),
            query=owner if ledger is not None else None))
        # Applied in place on the copied arrays (same update
        # apply_eps_rewrites performs, minus a second full-block copy),
        # restricted to the owning query's contiguous row block.
        block = slice(owner * rows_per_query, (owner + 1) * rows_per_query)
        row = eps[idx, block]
        center[block] += row * rewrites[-1].mid
        eps[idx, block] = row * rewrites[-1].half
    return MultiNormZonotope(center, phi, eps, z.p), rewrites
