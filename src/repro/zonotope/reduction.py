"""Noise-symbol reduction (Section 5.1, DecorrelateMin_k).

Every non-affine transformer appends fresh ℓ∞ symbols, so the eps block
grows with network depth; reduction keeps memory bounded and creates the
paper's tunable precision/speed trade-off. Following Mirman et al.'s
DecorrelateMin_k heuristic, each symbol j is scored by its total coefficient
mass ``m_j = sum_i |B_ij|``; the top-k symbols are kept and the rest are
collapsed into one *independent* fresh symbol per variable whose magnitude
is the dropped symbols' absolute row sum. phi symbols (the input region) are
never reduced.

The verifier applies reduction to the layer-input embeddings, before the
residual connection branches (Section 5.1), so both branches agree on the
symbol space.
"""

from __future__ import annotations

import time

import numpy as np

from ..trace import TRACER
from .multinorm import MultiNormZonotope

__all__ = ["reduce_noise_symbols", "symbol_scores", "REDUCTION_STRATEGIES"]


def _mass_scores(z):
    """DecorrelateMin_k: total coefficient mass, sum_i |B_ij|."""
    return np.abs(z.eps.reshape(z.n_eps, -1)).sum(axis=1)


def _peak_scores(z):
    """Peak contribution: max_i |B_ij| — favours symbols that dominate a
    single variable over symbols spread thin across many."""
    return np.abs(z.eps.reshape(z.n_eps, -1)).max(axis=1)


def _spread_scores(z):
    """Correlation spread: mass times the number of variables touched —
    keeping widely-shared symbols preserves more cross-variable
    correlation per kept row."""
    flat = np.abs(z.eps.reshape(z.n_eps, -1))
    return flat.sum(axis=1) * np.count_nonzero(flat, axis=1)


REDUCTION_STRATEGIES = {
    "mass": _mass_scores,
    "peak": _peak_scores,
    "spread": _spread_scores,
}


def symbol_scores(z, strategy="mass"):
    """Per-symbol heuristic scores (see :data:`REDUCTION_STRATEGIES`)."""
    if z.n_eps == 0:
        return np.zeros(0)
    return REDUCTION_STRATEGIES[strategy](z)


def reduce_noise_symbols(z, k, tol=0.0, strategy="mass"):
    """Reduce the eps block of ``z`` to the ``k`` highest-scoring symbols.

    The dropped symbols' mass is over-approximated per variable by a fresh
    independent symbol (a box), so the result always contains ``z``
    regardless of the scoring ``strategy``. When ``z`` already has at most
    ``k`` eps symbols it is returned unchanged. ``"mass"`` is the paper's
    DecorrelateMin_k heuristic; the alternatives support the reduction
    ablation bench.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if z.n_eps <= k:
        return z
    if not TRACER.enabled:
        return _reduce_impl(z, k, tol, strategy)
    start = time.perf_counter()
    out = _reduce_impl(z, k, tol, strategy)
    TRACER.record_op("reduce", out, time.perf_counter() - start,
                     eps_before=z.n_eps)
    return out


def _reduce_impl(z, k, tol, strategy):
    scores = symbol_scores(z, strategy)
    keep = np.sort(np.argsort(scores)[::-1][:k])
    drop_mask = np.ones(z.n_eps, dtype=bool)
    drop_mask[keep] = False
    dropped_mass = np.abs(z.eps[drop_mask]).sum(axis=0)
    reduced = MultiNormZonotope(z.center, z.phi, z.eps[keep], z.p)
    return reduced.append_fresh_eps(dropped_mass, tol=tol)
