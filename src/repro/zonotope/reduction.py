"""Noise-symbol reduction (Section 5.1, DecorrelateMin_k).

Every non-affine transformer appends fresh ℓ∞ symbols, so the eps block
grows with network depth; reduction keeps memory bounded and creates the
paper's tunable precision/speed trade-off. Following Mirman et al.'s
DecorrelateMin_k heuristic, each symbol j is scored by its total coefficient
mass ``m_j = sum_i |B_ij|``; the top-k symbols are kept and the rest are
collapsed into one *independent* fresh symbol per variable whose magnitude
is the dropped symbols' absolute row sum. phi symbols (the input region) are
never reduced.

The verifier applies reduction to the layer-input embeddings, before the
residual connection branches (Section 5.1), so both branches agree on the
symbol space.
"""

from __future__ import annotations

import time

import numpy as np

from ..trace import TRACER
from .batch import active_batch
from .multinorm import MultiNormZonotope

__all__ = ["reduce_noise_symbols", "symbol_scores", "REDUCTION_STRATEGIES"]


def _mass_rows(rows):
    """DecorrelateMin_k: total coefficient mass, sum_i |B_ij|."""
    return np.abs(rows.reshape(rows.shape[0], -1)).sum(axis=1)


def _peak_rows(rows):
    """Peak contribution: max_i |B_ij| — favours symbols that dominate a
    single variable over symbols spread thin across many."""
    return np.abs(rows.reshape(rows.shape[0], -1)).max(axis=1)


def _spread_rows(rows):
    """Correlation spread: mass times the number of variables touched —
    keeping widely-shared symbols preserves more cross-variable
    correlation per kept row."""
    flat = np.abs(rows.reshape(rows.shape[0], -1))
    return flat.sum(axis=1) * np.count_nonzero(flat, axis=1)


def _mass_scores(z):
    return _mass_rows(z.eps)


def _peak_scores(z):
    return _peak_rows(z.eps)


def _spread_scores(z):
    return _spread_rows(z.eps)


_ROW_STRATEGIES = {
    "mass": _mass_rows,
    "peak": _peak_rows,
    "spread": _spread_rows,
}


REDUCTION_STRATEGIES = {
    "mass": _mass_scores,
    "peak": _peak_scores,
    "spread": _spread_scores,
}


def symbol_scores(z, strategy="mass"):
    """Per-symbol heuristic scores (see :data:`REDUCTION_STRATEGIES`)."""
    if z.n_eps == 0:
        return np.zeros(0)
    return REDUCTION_STRATEGIES[strategy](z)


def reduce_noise_symbols(z, k, tol=0.0, strategy="mass"):
    """Reduce the eps block of ``z`` to the ``k`` highest-scoring symbols.

    The dropped symbols' mass is over-approximated per variable by a fresh
    independent symbol (a box), so the result always contains ``z``
    regardless of the scoring ``strategy``. When ``z`` already has at most
    ``k`` eps symbols it is returned unchanged. ``"mass"`` is the paper's
    DecorrelateMin_k heuristic; the alternatives support the reduction
    ablation bench.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    ledger = active_batch()
    if ledger is not None:
        impl = _reduce_batched
        # A query is reduced iff its own live-symbol count exceeds k —
        # exactly the serial early-exit, applied per query.
        if z.n_eps != ledger.count:
            raise RuntimeError(
                f"reduction input has {z.n_eps} eps symbols but the batch "
                f"ledger frontier is {ledger.count}")
        if ledger.live_counts().max(initial=0) <= k:
            return z
        args = (z, k, tol, strategy, ledger)
    else:
        impl = _reduce_impl
        if z.n_eps <= k:
            return z
        args = (z, k, tol, strategy)
    if not TRACER.enabled:
        return impl(*args)
    start = time.perf_counter()
    out = impl(*args)
    TRACER.record_op("reduce", out, time.perf_counter() - start,
                     eps_before=z.n_eps)
    return out


def _reduce_impl(z, k, tol, strategy):
    scores = symbol_scores(z, strategy)
    keep = np.sort(np.argsort(scores)[::-1][:k])
    drop_mask = np.ones(z.n_eps, dtype=bool)
    drop_mask[keep] = False
    dropped_mass = np.abs(z.eps[drop_mask]).sum(axis=0)
    reduced = MultiNormZonotope(z.center, z.phi, z.eps[keep], z.p)
    return reduced.append_fresh_eps(dropped_mass, tol=tol)


def _reduce_batched(z, k, tol, strategy, ledger):
    """Per-query DecorrelateMin_k over one stacked ``(B, *S)`` zonotope.

    Each query's live rows are gathered and scored exactly as the serial
    engine scores its own eps block (same reshape, same reductions), the
    serial top-k selection is replayed per query, and the kept rows are
    repacked into a fresh slot layout. Queries whose live count is at most
    ``k`` keep all their rows and contribute no dropped mass — the serial
    early-exit, per query. The ledger is rebased to the repacked layout
    *before* the dropped-mass append so the fresh slots land on the new
    frontier.
    """
    score_rows = _ROW_STRATEGIES[strategy]
    live = ledger.live_matrix()
    eps = z.eps
    kept_per_query = []
    dropped_mass = np.zeros(z.shape)
    for b in range(ledger.batch):
        rows = np.flatnonzero(live[:, b])
        if len(rows) <= k:
            kept_per_query.append(rows)
            continue
        scores = score_rows(eps[rows, b])
        keep = np.sort(np.argsort(scores)[::-1][:k])
        kept = rows[keep]
        drop = np.setdiff1d(rows, kept)
        dropped_mass[b] = np.abs(eps[drop, b]).sum(axis=0)
        kept_per_query.append(kept)

    new_count = max(len(kept) for kept in kept_per_query)
    new_eps = np.zeros((new_count,) + z.shape)
    new_live = np.zeros((new_count, ledger.batch), dtype=bool)
    for b, kept in enumerate(kept_per_query):
        new_eps[:len(kept), b] = eps[kept, b]
        new_live[:len(kept), b] = True
    reduced = MultiNormZonotope(z.center, z.phi, new_eps, z.p)
    ledger.rebase(new_live)
    return reduced.append_fresh_eps(dropped_mass, tol=tol)
