"""Cross-query batching: one stacked propagation for N perturbation regions.

The Table-1 workload certifies many perturbation regions of one frozen
model; serial certification pays a full kernel-dispatch pass per region.
Stacking regions along a leading batch axis turns N propagations into one
pass over ``(B, *S)``-shaped tensors, amortizing every numpy dispatch.

Soundness hinges on keeping the queries' noise symbols disjoint.  The
stacked coefficient blocks are block-diagonal across queries *by
construction*: every abstract transformer is batch-local (it never mixes
the leading variable axis), and fresh symbols are appended through
:class:`~repro.zonotope.storage.BatchedEpsTail`, whose slot ``s`` carries
query ``b``'s magnitude in ``mag[s, b]`` — a query that appends nothing at
that program point simply holds a zero there.

:class:`QueryBatchLedger` records which (slot, query) pairs hold real
symbols.  Its ``append`` asserts the appender sits at the global symbol
frontier — the PR-1 aliasing bug class (two transformers appending fresh
symbols at the same index) raises :class:`BatchAliasingError` instead of
silently correlating unrelated noise terms.

Bitwise equivalence with the serial engine is maintained by gathering a
query's *live* rows before any reduction that numpy computes with pairwise
summation over the symbol axis (interval margins, softmax-sum refinement,
symbol reduction); see ``tests/test_batched_equivalence.py``.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from .numeric import propagation_errstate

__all__ = ["BatchAliasingError", "QueryBatchLedger", "active_batch",
           "batch_scope", "stack_regions", "batched_margins"]


class BatchAliasingError(RuntimeError):
    """A transformer tried to append fresh symbols off the global frontier.

    Serial propagation keeps a single monotonically growing symbol space;
    appending at an index below the frontier would alias an existing
    symbol of another zonotope (the PR-1 bug class). The batched ledger
    makes that structurally impossible by refusing the append.
    """


class QueryBatchLedger:
    """Per-(slot, query) liveness for one batched propagation.

    ``count`` is the global eps-symbol frontier; ``live_matrix()`` is the
    ``(count, batch)`` bool mask of which queries own a real symbol in each
    slot. Reduction rebases the ledger when it rebuilds the symbol space.
    """

    __slots__ = ("batch", "_blocks", "count")

    def __init__(self, batch):
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.batch = int(batch)
        self._blocks = []
        self.count = 0

    def append(self, live_block, at_count):
        """Record fresh slots appended at symbol index ``at_count``."""
        live_block = np.asarray(live_block, dtype=bool)
        if live_block.ndim != 2 or live_block.shape[1] != self.batch:
            raise ValueError(
                f"live block shape {live_block.shape} does not match "
                f"batch {self.batch}")
        if at_count != self.count:
            raise BatchAliasingError(
                f"fresh symbols appended at index {at_count} but the "
                f"global frontier is {self.count}: the appending zonotope "
                f"is not at the symbol frontier")
        self._blocks.append(live_block)
        self.count += live_block.shape[0]

    def live_matrix(self):
        """``(count, batch)`` liveness mask, in slot order."""
        if not self._blocks:
            return np.zeros((0, self.batch), dtype=bool)
        if len(self._blocks) > 1:
            self._blocks = [np.concatenate(self._blocks, axis=0)]
        return self._blocks[0]

    def live_counts(self):
        """Per-query count of real symbols (the serial ``n_eps``)."""
        return self.live_matrix().sum(axis=0)

    def rebase(self, live):
        """Replace the symbol space (after noise-symbol reduction)."""
        live = np.asarray(live, dtype=bool)
        if live.ndim != 2 or live.shape[1] != self.batch:
            raise ValueError("rebase mask must be (count, batch)")
        self._blocks = [live]
        self.count = live.shape[0]


class _BatchState:
    __slots__ = ("ledger",)

    def __init__(self):
        self.ledger = None


_ACTIVE = _BatchState()


def active_batch():
    """The ledger of the enclosing :func:`batch_scope`, or ``None``."""
    return _ACTIVE.ledger


@contextmanager
def batch_scope(ledger):
    """Run a batched propagation: fresh-eps appends go through ``ledger``."""
    previous = _ACTIVE.ledger
    _ACTIVE.ledger = ledger
    try:
        yield ledger
    finally:
        _ACTIVE.ledger = previous


def stack_regions(regions):
    """Stack serial input regions into one batched zonotope.

    All regions must share the variable shape, the norm ``p`` and the
    symbol counts (same threat model over same-length sentences). Returns
    ``(stacked, ledger)``; the initial symbols are live for every query
    because each region contributes its own coefficients to every slot.
    """
    from .multinorm import MultiNormZonotope

    if not regions:
        raise ValueError("nothing to stack")
    first = regions[0]
    for region in regions[1:]:
        if (region.shape != first.shape or region.p != first.p
                or region.n_phi != first.n_phi
                or region.n_eps != first.n_eps):
            raise ValueError(
                "regions must share shape, p and symbol counts to batch; "
                f"got {region!r} vs {first!r}")
    center = np.stack([region.center for region in regions], axis=0)
    phi = np.stack([region.phi for region in regions], axis=1)
    eps = np.stack([region.eps for region in regions], axis=1)
    stacked = MultiNormZonotope(center, phi, eps, first.p)
    ledger = QueryBatchLedger(len(regions))
    if first.n_eps:
        ledger.append(np.ones((first.n_eps, len(regions)), dtype=bool),
                      at_count=0)
    return stacked, ledger


def batched_margins(logits, true_labels, ledger):
    """Per-query worst classification margins of batched ``(B, C)`` logits.

    Replays the serial margin check exactly: for each query the live eps
    rows are gathered first, so the pairwise summation over the symbol
    axis sees the same operand sequence as ``(logits[t] - logits[o])
    .bounds()`` does serially — dead slots would otherwise change the
    pairwise reduction tree and break bitwise equality. NaN margins
    (overflowed affine forms) degrade to -inf, as in serial ``bounds()``.
    """
    from .multinorm import norm_along_axis0

    live = ledger.live_matrix()
    center = logits.center
    phi = logits.phi
    eps = logits.eps                       # densifies any lazy tail
    q = logits.q
    n_classes = logits.shape[-1]
    worsts = np.empty(ledger.batch)
    with propagation_errstate():
        for b in range(ledger.batch):
            true = int(true_labels[b])
            rows = np.flatnonzero(live[:, b])
            margins = []
            for other in range(n_classes):
                if other == true:
                    continue
                diff_center = center[b, true] - center[b, other]
                diff_phi = phi[:, b, true] - phi[:, b, other]
                diff_eps = eps[rows, b, true] - eps[rows, b, other]
                spread = (norm_along_axis0(diff_phi, q)
                          + np.abs(diff_eps).sum())
                lower = diff_center - spread
                if np.isnan(lower):
                    lower = -np.inf
                margins.append(float(lower))
            worsts[b] = min(margins)
    return worsts
