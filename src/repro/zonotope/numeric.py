"""The zonotope engine's single floating-point error policy.

Abstract transformers deliberately evaluate expressions that overflow or
produce NaN on extreme regions — exponentials of huge intervals, ``inf -
inf`` in interval arithmetic, ``0 * inf`` in dot-product cascades. Those
cases are *handled*: the softmax falls back to the sound [0, 1] box,
:meth:`MultiNormZonotope.bounds` degrades NaN entries to the vacuous
``-inf/+inf`` interval, and the propagation guard turns anything that
escapes into a typed error. What must not happen is numpy announcing each
handled case with a ``RuntimeWarning`` — a warning the caller can neither
act on nor distinguish from a genuine bug.

Every propagation entry point therefore runs under one shared policy,
:data:`PROPAGATION_ERRSTATE`, instead of ad-hoc per-call-site ``errstate``
blocks: overflow, invalid and divide are silenced *inside* the engine
(where they are expected and handled) and the test suite turns any numpy
RuntimeWarning that still leaks out of ``repro.zonotope`` into an error
(see ``[tool.pytest.ini_options] filterwarnings``), so an unhandled
numerical path can never hide behind a warning again.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["PROPAGATION_ERRSTATE", "propagation_errstate",
           "under_propagation_errstate"]

PROPAGATION_ERRSTATE = {"over": "ignore", "invalid": "ignore",
                        "divide": "ignore"}
"""The one floating-point error policy of the abstract-transformer engine."""


def propagation_errstate():
    """``np.errstate`` context applying the engine policy."""
    return np.errstate(**PROPAGATION_ERRSTATE)


def under_propagation_errstate(fn):
    """Decorator: run ``fn`` under the engine's errstate policy."""
    @functools.wraps(fn)
    def wrapped(*args, **kwargs):
        with np.errstate(**PROPAGATION_ERRSTATE):
            return fn(*args, **kwargs)
    return wrapped
