"""The Multi-norm Zonotope abstract domain (the paper's contribution)."""

from .multinorm import MultiNormZonotope, dual_exponent, norm_along_axis0
from .numeric import (PROPAGATION_ERRSTATE, propagation_errstate,
                      under_propagation_errstate)
from .storage import (BatchedEpsTail, EpsBuffer, EpsCapacityPool, EpsTail,
                      capacity_pool, dense_engine, fast_path_enabled,
                      reset_capacity_pool, set_fast_path)
from .batch import (BatchAliasingError, QueryBatchLedger, active_batch,
                    batch_scope, batched_margins, stack_regions)
from . import elementwise
from .elementwise import relu, tanh, exp, reciprocal, rsqrt, sigmoid, gelu
from .fused import fused_affine_response, fused_layer_norm
from .dotproduct import zonotope_matmul, zonotope_multiply, DotProductConfig
from .softmax import softmax
from .refinement import (
    EpsRewrite, apply_eps_rewrites, refine_softmax_rows,
    minimize_coefficient_mass,
)
from .reduction import (reduce_noise_symbols, symbol_scores,
                        REDUCTION_STRATEGIES)

__all__ = [
    "MultiNormZonotope", "dual_exponent", "norm_along_axis0",
    "PROPAGATION_ERRSTATE", "propagation_errstate",
    "under_propagation_errstate",
    "EpsBuffer", "EpsTail", "BatchedEpsTail", "EpsCapacityPool",
    "capacity_pool", "reset_capacity_pool", "dense_engine",
    "fast_path_enabled", "set_fast_path",
    "BatchAliasingError", "QueryBatchLedger", "active_batch", "batch_scope",
    "batched_margins", "stack_regions",
    "elementwise", "relu", "tanh", "exp", "reciprocal", "rsqrt",
    "sigmoid", "gelu", "fused_affine_response", "fused_layer_norm",
    "zonotope_matmul", "zonotope_multiply", "DotProductConfig",
    "softmax", "EpsRewrite", "apply_eps_rewrites", "refine_softmax_rows",
    "minimize_coefficient_mass",
    "reduce_noise_symbols", "symbol_scores", "REDUCTION_STRATEGIES",
]
