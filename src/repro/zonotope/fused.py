"""Fused elementwise chains (single multi-array passes).

The layer-norm and elementwise-response pipelines are chains of exact
affine transformers; executed op by op, each link allocates a full
intermediate zonotope (center + phi + eps temporaries). These fused
versions compute the same per-element expression trees in one pass per
coefficient array, so results are bitwise identical to the chained ops
(every reassociation avoided, only temporaries removed — IEEE
multiplication commutativity covers the two ``a*b`` orderings involved).
"""

from __future__ import annotations

import numpy as np

from ..perf import PERF
from .multinorm import MultiNormZonotope, _fresh_eps_tail
from .storage import EpsBuffer, EpsTail

__all__ = ["fused_affine_response", "fused_layer_norm"]


def fused_affine_response(x, lam, mu, beta_new, tol=0.0):
    """``affine_image(lam, mu)`` + ``append_fresh_eps(beta_new)`` in one pass.

    Identical arithmetic to the chained calls; skips the intermediate
    zonotope between them, rescaling the lazy tail and concatenating the
    fresh symbols directly into the output.
    """
    PERF.count("fused_affine_responses")
    lam = np.asarray(lam, dtype=np.float64)
    center = lam * x.center
    if mu is not None:
        center = center + mu
    phi = lam * x.phi
    dense = lam * x._dense_rows()
    tail = x._eps_tail
    if tail is not None:
        lam_flat = np.broadcast_to(lam, x.shape).reshape(-1)
        tail = tail.scale_flat(lam_flat)
    fresh, live, ledger = _fresh_eps_tail(beta_new, tol)
    if len(fresh):
        if ledger is not None:
            ledger.append(live, at_count=x.n_eps)
        if PERF.enabled:
            PERF.gauge_max("peak_eps_rows", x.n_eps + len(fresh))
        tail = EpsTail.concatenated(tail, fresh)
    return MultiNormZonotope._build(center, phi, EpsBuffer.from_rows(dense),
                                    dense.shape[0], tail, x.p)


def _normalized(block, inv, gamma):
    """One fused pass of ``(block - mean(block)) * gamma`` over the last axis.

    Matches the chained engine per element: row sum, then ``* inv`` (the
    ``mean_vars`` scale), then the subtraction, then the ``gamma`` scale.
    """
    mean = block.sum(axis=-1, keepdims=True)
    mean = mean * inv
    out = block - mean
    out *= gamma
    return out


def fused_layer_norm(z, gamma, beta):
    """No-division layer norm ``gamma * (x - mean(x)) + beta``, fused.

    Collapses the serial chain ``(z - z.mean_vars(-1, keepdims=True))
    .scale(gamma) + beta`` — five intermediate zonotopes — into one pass
    per coefficient array. The eps tail is materialized once (the serial
    chain densifies it inside the subtraction anyway), so the fused form
    does strictly less allocation for the same arithmetic.
    """
    PERF.count("fused_layer_norms")
    inv = 1.0 / z.shape[-1]
    center = _normalized(z.center, inv, gamma) + beta
    phi = _normalized(z.phi, inv, gamma)
    eps = _normalized(z.eps, inv, gamma)
    return MultiNormZonotope._build(center, phi, EpsBuffer.from_rows(eps),
                                    eps.shape[0], None, z.p)
