"""Procedurally rendered digit images (offline MNIST stand-in, App. A.2/A.3).

Each class has a stroke template (line segments on a unit square); samples
apply a random affine jitter and blur, then add pixel noise. The result is a
linearly-nonseparable but easily learnable 10-class (or 2-class) image task,
which is all the paper's A.2/A.3 experiments need from MNIST.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_digit", "make_digit_dataset", "make_binary_digit_dataset"]

# Stroke templates: list of ((x0, y0), (x1, y1)) segments in [0, 1]^2.
_TEMPLATES = {
    0: [((0.3, 0.2), (0.7, 0.2)), ((0.7, 0.2), (0.7, 0.8)),
        ((0.7, 0.8), (0.3, 0.8)), ((0.3, 0.8), (0.3, 0.2))],
    1: [((0.5, 0.15), (0.5, 0.85)), ((0.35, 0.3), (0.5, 0.15))],
    2: [((0.3, 0.25), (0.7, 0.25)), ((0.7, 0.25), (0.7, 0.5)),
        ((0.7, 0.5), (0.3, 0.8)), ((0.3, 0.8), (0.7, 0.8))],
    3: [((0.3, 0.2), (0.7, 0.25)), ((0.7, 0.25), (0.4, 0.5)),
        ((0.4, 0.5), (0.7, 0.75)), ((0.7, 0.75), (0.3, 0.8))],
    4: [((0.65, 0.15), (0.65, 0.85)), ((0.65, 0.15), (0.3, 0.6)),
        ((0.3, 0.6), (0.75, 0.6))],
    5: [((0.7, 0.2), (0.3, 0.2)), ((0.3, 0.2), (0.3, 0.5)),
        ((0.3, 0.5), (0.7, 0.55)), ((0.7, 0.55), (0.65, 0.8)),
        ((0.65, 0.8), (0.3, 0.8))],
    6: [((0.65, 0.2), (0.35, 0.45)), ((0.35, 0.45), (0.35, 0.8)),
        ((0.35, 0.8), (0.65, 0.8)), ((0.65, 0.8), (0.65, 0.55)),
        ((0.65, 0.55), (0.35, 0.55))],
    7: [((0.3, 0.2), (0.7, 0.2)), ((0.7, 0.2), (0.4, 0.85))],
    8: [((0.5, 0.2), (0.3, 0.35)), ((0.3, 0.35), (0.7, 0.65)),
        ((0.7, 0.65), (0.5, 0.8)), ((0.5, 0.8), (0.3, 0.65)),
        ((0.3, 0.65), (0.7, 0.35)), ((0.7, 0.35), (0.5, 0.2))],
    9: [((0.65, 0.45), (0.35, 0.45)), ((0.35, 0.45), (0.35, 0.2)),
        ((0.35, 0.2), (0.65, 0.2)), ((0.65, 0.2), (0.65, 0.85))],
}


def render_digit(digit, size=14, rng=None, thickness=0.06, noise=0.05):
    """Render one (size, size) grayscale image of ``digit`` in [0, 1]."""
    if digit not in _TEMPLATES:
        raise ValueError(f"no template for digit {digit!r}")
    rng = rng or np.random.default_rng(0)
    shift = rng.uniform(-0.06, 0.06, size=2)
    scale = rng.uniform(0.85, 1.1)
    ys, xs = np.mgrid[0:size, 0:size]
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size
    image = np.zeros((size, size))
    for (x0, y0), (x1, y1) in _TEMPLATES[digit]:
        a = (np.array([x0, y0]) - 0.5) * scale + 0.5 + shift
        b = (np.array([x1, y1]) - 0.5) * scale + 0.5 + shift
        d = b - a
        seg_len2 = max(float(d @ d), 1e-9)
        t = ((px - a[0]) * d[0] + (py - a[1]) * d[1]) / seg_len2
        t = np.clip(t, 0.0, 1.0)
        dist2 = (px - (a[0] + t * d[0])) ** 2 + (py - (a[1] + t * d[1])) ** 2
        image = np.maximum(image, np.exp(-dist2 / (2 * thickness ** 2)))
    if noise:
        image = image + rng.normal(0.0, noise, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def make_digit_dataset(n_per_class=40, size=14, classes=range(10), seed=0):
    """(images, labels) arrays for the requested digit classes."""
    rng = np.random.default_rng(seed)
    images, labels = [], []
    for digit in classes:
        for _ in range(n_per_class):
            images.append(render_digit(digit, size=size, rng=rng))
            labels.append(digit)
    images = np.stack(images)
    labels = np.asarray(labels)
    order = rng.permutation(len(labels))
    return images[order], labels[order]


def make_binary_digit_dataset(digits=(1, 7), n_per_class=80, size=14, seed=0):
    """Binary digit task (paper A.2 uses MNIST 1-vs-7); labels are 0/1."""
    images, raw_labels = make_digit_dataset(
        n_per_class=n_per_class, size=size, classes=digits, seed=seed)
    labels = (raw_labels == digits[1]).astype(np.intp)
    return images, labels
