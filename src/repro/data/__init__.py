"""Synthetic datasets (offline stand-ins for MNIST)."""

from .synthetic_mnist import (
    render_digit, make_digit_dataset, make_binary_digit_dataset,
)

__all__ = ["render_digit", "make_digit_dataset", "make_binary_digit_dataset"]
