"""Linear relaxations of the graph operations (CROWN baseline substrate).

Each nonlinearity f over an interval [l, u] gets linear lower/upper bounds

    a_l * x + b_l  <=  f(x)  <=  a_u * x + b_u   for x in [l, u];

bilinear products get McCormick planes. These are the relaxation shapes used
by Shi et al.'s Transformer verifier, which DeepT compares against.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relu_relaxation", "tanh_relaxation", "exp_relaxation",
           "reciprocal_relaxation", "rsqrt_relaxation", "gelu_relaxation",
           "mul_relaxation",
           "unary_relaxation"]

_POINT_TOL = 1e-12


def relu_relaxation(lower, upper):
    """CROWN ReLU planes: chord above, {0, x} below (picked per |l| vs u)."""
    a_l = np.where(upper >= -lower, 1.0, 0.0)
    a_l = np.where(upper <= 0, 0.0, a_l)
    a_l = np.where(lower >= 0, 1.0, a_l)
    b_l = np.zeros_like(lower)

    width = np.maximum(upper - lower, _POINT_TOL)
    a_u = np.where(lower >= 0, 1.0,
                   np.where(upper <= 0, 0.0, upper / width))
    b_u = np.where((lower < 0) & (upper > 0), -lower * upper / width, 0.0)
    return a_l, b_l, a_u, b_u


def tanh_relaxation(lower, upper):
    """Parallel-slope band: slope = min endpoint derivative.

    ``g(x) = tanh(x) - lam*x`` is monotone on [l, u] when ``lam`` is the
    minimum endpoint derivative (1 - tanh^2 is unimodal), so
    ``g(l) <= g(x) <= g(u)`` gives valid planes for every sign pattern.
    """
    point = (upper - lower) <= _POINT_TOL
    lam = np.minimum(1.0 - np.tanh(lower) ** 2, 1.0 - np.tanh(upper) ** 2)
    tl, tu = np.tanh(lower), np.tanh(upper)
    a_l = np.where(point, 0.0, lam)
    b_l = np.where(point, tl, tl - lam * lower)
    a_u = np.where(point, 0.0, lam)
    b_u = np.where(point, tu, tu - lam * upper)
    return a_l, b_l, a_u, b_u


def exp_relaxation(lower, upper):
    """Tangent below (at the clamped midpoint), chord above."""
    point = (upper - lower) <= _POINT_TOL
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        mid = np.minimum(0.5 * (lower + upper), 700.0)
        a_l = np.exp(mid)
        b_l = a_l * (1.0 - mid)
        width = np.maximum(upper - lower, _POINT_TOL)
        exp_l, exp_u = np.exp(lower), np.exp(upper)
        a_u = (exp_u - exp_l) / width
        b_u = exp_l - a_u * lower
        a_l = np.where(point, 0.0, a_l)
        b_l = np.where(point, exp_l, b_l)
        a_u = np.where(point, 0.0, a_u)
        b_u = np.where(point, exp_u, b_u)
        # Overflowing chords degrade to a vacuous (but sound) upper plane.
        bad = ~np.isfinite(a_u)
        a_u = np.where(bad, 0.0, a_u)
        b_u = np.where(bad, np.inf, b_u)
    return a_l, b_l, a_u, b_u


def reciprocal_relaxation(lower, upper):
    """Tangent below (convex), chord above; requires l >= 0.

    Entries whose lower bound is zero (softmax-denominator exp underflow)
    get the vacuous-but-sound planes 0 <= 1/x <= inf, since the true
    reciprocal input is positive.
    """
    if np.any(lower < 0):
        raise ValueError("reciprocal relaxation requires non-negative bounds")
    degenerate = lower <= 0
    safe_lower = np.where(degenerate, 1.0, lower)
    safe_upper = np.where(degenerate, 1.0, upper)
    point = (safe_upper - safe_lower) <= _POINT_TOL
    mid = 0.5 * (safe_lower + safe_upper)
    a_l = np.where(point, 0.0, -1.0 / mid ** 2)
    b_l = np.where(point, 1.0 / safe_lower, 2.0 / mid)
    a_u = np.where(point, 0.0, -1.0 / (safe_lower * safe_upper))
    b_u = np.where(point, 1.0 / safe_lower,
                   1.0 / safe_lower + 1.0 / safe_upper)
    a_l = np.where(degenerate, 0.0, a_l)
    b_l = np.where(degenerate, 0.0, b_l)
    a_u = np.where(degenerate, 0.0, a_u)
    b_u = np.where(degenerate, np.inf, b_u)
    return a_l, b_l, a_u, b_u


def rsqrt_relaxation(lower, upper, shift=0.0):
    """Planes for ``1/sqrt(x + shift)``: tangent below (convex), chord above.

    Used by standard layer normalization (Table 7). Requires
    ``lower + shift >= 0``; zero-width and zero-lower cases degrade to
    vacuous-but-sound planes like the reciprocal.
    """
    lo = lower + shift
    hi = upper + shift
    if np.any(lo < 0):
        raise ValueError("rsqrt relaxation requires non-negative bounds")
    degenerate = lo <= 0
    safe_lo = np.where(degenerate, 1.0, lo)
    safe_hi = np.where(degenerate, 1.0, hi)
    point = (safe_hi - safe_lo) <= _POINT_TOL

    def f(t):
        return 1.0 / np.sqrt(t)

    mid = 0.5 * (safe_lo + safe_hi)
    a_l = np.where(point, 0.0, -0.5 * mid ** -1.5)
    b_l = np.where(point, f(safe_lo), f(mid) + 0.5 * mid ** -1.5 * mid)
    width = np.maximum(safe_hi - safe_lo, _POINT_TOL)
    chord = (f(safe_hi) - f(safe_lo)) / width
    a_u = np.where(point, 0.0, chord)
    b_u = np.where(point, f(safe_lo), f(safe_lo) - chord * safe_lo)
    # Planes are in terms of the shifted variable t = x + shift:
    # a*t + b = a*x + (b + a*shift).
    b_l = b_l + a_l * shift
    b_u = b_u + a_u * shift
    a_l = np.where(degenerate, 0.0, a_l)
    b_l = np.where(degenerate, 0.0, b_l)
    a_u = np.where(degenerate, 0.0, a_u)
    b_u = np.where(degenerate, np.inf, b_u)
    return a_l, b_l, a_u, b_u


_UNARY = {
    "relu": relu_relaxation,
    "tanh": tanh_relaxation,
    "exp": exp_relaxation,
    "reciprocal": reciprocal_relaxation,
}


def gelu_relaxation(lower, upper, n_grid=64):
    """Sampled parallel-slope band for GELU (chord slope, grid extrema).

    Mirrors the zonotope transformer's construction: the band slope is the
    chord slope, the offsets come from the extrema of ``gelu(t) - lam*t``
    on a grid, widened by the maximal curvature error between grid points
    (|gelu''| <= ~1.13).
    """
    from scipy.stats import norm as _norm

    point = (upper - lower) <= _POINT_TOL

    def g(t):
        return t * _norm.cdf(t)

    width = np.maximum(upper - lower, _POINT_TOL)
    lam = (g(upper) - g(lower)) / width
    offsets = np.linspace(0.0, 1.0, n_grid)
    grid = lower[None] + offsets.reshape(-1, *([1] * lower.ndim)) * width
    gaps = g(grid) - lam * grid
    safety = 1.13 / 8.0 * (width / (n_grid - 1)) ** 2
    b_l = gaps.min(axis=0) - safety
    b_u = gaps.max(axis=0) + safety
    a_l = np.where(point, 0.0, lam)
    a_u = np.where(point, 0.0, lam)
    b_l = np.where(point, g(lower), b_l)
    b_u = np.where(point, g(upper), b_u)
    return a_l, b_l, a_u, b_u


def unary_relaxation(op, lower, upper, params=None):
    """Dispatch to the relaxation of a unary graph op."""
    if op == "rsqrt":
        return rsqrt_relaxation(lower, upper,
                                shift=(params or {}).get("shift", 0.0))
    if op == "gelu":
        return gelu_relaxation(lower, upper)
    return _UNARY[op](lower, upper)


def mul_relaxation(lx, ux, lz, uz):
    """McCormick planes for ``x * z`` over a box, broadcast elementwise.

    Returns ``(al_x, al_z, gl, au_x, au_z, gu)`` with
    ``al_x*x + al_z*z + gl <= x*z <= au_x*x + au_z*z + gu``. Between the two
    valid planes on each side, the one with the better value at the box
    center is selected (elementwise).
    """
    cx = 0.5 * (lx + ux)
    cz = 0.5 * (lz + uz)
    # Lower planes: x z >= lz x + lx z - lx lz  and  >= uz x + ux z - ux uz.
    low1 = (lz, lx, -lx * lz)
    low2 = (uz, ux, -ux * uz)
    val1 = low1[0] * cx + low1[1] * cz + low1[2]
    val2 = low2[0] * cx + low2[1] * cz + low2[2]
    pick1 = val1 >= val2
    al_x = np.where(pick1, low1[0], low2[0])
    al_z = np.where(pick1, low1[1], low2[1])
    gl = np.where(pick1, low1[2], low2[2])
    # Upper planes: x z <= uz x + lx z - lx uz  and  <= lz x + ux z - ux lz.
    up1 = (uz, lx, -lx * uz)
    up2 = (lz, ux, -ux * lz)
    val1 = up1[0] * cx + up1[1] * cz + up1[2]
    val2 = up2[0] * cx + up2[1] * cz + up2[2]
    pick1 = val1 <= val2
    au_x = np.where(pick1, up1[0], up2[0])
    au_z = np.where(pick1, up1[1], up2[1])
    gu = np.where(pick1, up1[2], up2[2])
    return al_x, al_z, gl, au_x, au_z, gu
