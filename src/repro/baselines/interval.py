"""Interval bound propagation (IBP) baseline.

Not one of the paper's comparators, but the cheapest sound verifier for the
same threat models — useful as a sanity oracle in tests (every other method
must be at least as tight) and as the degenerate ``backsub_depth=0`` corner
of the CROWN spectrum.
"""

from __future__ import annotations

import numpy as np

from ..verify.guards import certified_from_margin
from .graph import build_transformer_graph, interval_propagate
from .crown import LpBallInputRegion, BoxInputRegion

__all__ = ["IntervalVerifier"]


class IntervalVerifier:
    """Pure interval-arithmetic certification of a Transformer classifier."""

    def __init__(self, model):
        self.model = model

    def margin_lower_bound(self, region, true_label):
        """IBP lower bound of min_other (y_true - y_other) over region."""
        n_tokens = region.center.shape[0]
        graph, _, logits = build_transformer_graph(self.model, n_tokens)
        interval_propagate(graph, *region.interval())
        lower = logits.lower.reshape(-1)
        upper = logits.upper.reshape(-1)
        margins = [lower[true_label] - upper[other]
                   for other in range(len(lower)) if other != true_label]
        return float(min(margins))

    def certify_region(self, region, true_label):
        """True iff the IBP margin bound is strictly positive."""
        return certified_from_margin(
            self.margin_lower_bound(region, true_label))

    def certify_word_perturbation(self, token_ids, position, radius, p,
                                  true_label=None):
        """T1 certification of one word's ℓp ball via pure IBP."""
        if true_label is None:
            true_label = self.model.predict(token_ids)
        embeddings = self.model.embed_array(token_ids)
        mask = np.zeros(embeddings.shape, dtype=bool)
        mask[position] = True
        region = LpBallInputRegion(embeddings, radius, p, mask)
        return self.certify_region(region, true_label)

    def certify_synonym_attack(self, attack, true_label=None):
        """T2 certification of a synonym box via pure IBP."""
        if true_label is None:
            true_label = self.model.predict(attack.token_ids)
        region = BoxInputRegion(attack.center, attack.radius)
        return self.certify_region(region, true_label)
