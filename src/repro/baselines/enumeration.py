"""Exhaustive synonym enumeration (the T2 baseline of Section 6.7).

Certifying a synonym attack by enumeration classifies every combination of
substitutions. For a sentence whose positions admit ``k_i`` choices each the
cost is ``prod(1 + k_i)`` forward passes — Table 9's example has 23 million
combinations, which is why the paper reports enumeration 2-3 orders of
magnitude slower than DeepT. The enumerator supports a budget so benchmarks
can measure throughput and extrapolate honestly instead of running for
hours.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["EnumerationResult", "enumerate_synonym_attack",
           "estimate_enumeration_seconds"]


@dataclass(frozen=True)
class EnumerationResult:
    """Outcome of (possibly budgeted) enumeration.

    ``robust`` is None when the budget ran out before either finding a
    counterexample or exhausting the combinations.
    """

    robust: bool
    checked: int
    total: int
    seconds: float
    counterexample: list = None

    @property
    def exhaustive(self):
        """Whether every combination was classified."""
        return self.checked == self.total

    @property
    def seconds_per_sentence(self):
        """Average classification cost (the extrapolation unit)."""
        return self.seconds / max(self.checked, 1)


def enumerate_synonym_attack(model, attack, true_label=None, budget=None):
    """Classify every synonym combination (up to ``budget`` sentences).

    Returns an :class:`EnumerationResult`; ``robust=False`` as soon as any
    combination misclassifies, ``robust=True`` only after exhausting all
    combinations, ``robust=None`` when the budget was hit first.
    """
    if true_label is None:
        true_label = model.predict(attack.token_ids)
    total = attack.n_combinations
    start = time.perf_counter()
    checked = 0
    for sequence in attack.iter_combinations(limit=budget):
        checked += 1
        if model.predict(sequence) != true_label:
            return EnumerationResult(
                robust=False, checked=checked, total=total,
                seconds=time.perf_counter() - start,
                counterexample=sequence)
    robust = True if checked == total else None
    return EnumerationResult(robust=robust, checked=checked, total=total,
                             seconds=time.perf_counter() - start)


def estimate_enumeration_seconds(result, total=None):
    """Extrapolate full-enumeration time from a budgeted run."""
    total = total if total is not None else result.total
    return result.seconds_per_sentence * total
