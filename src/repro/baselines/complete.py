"""Complete verification of small ReLU networks (GeoCert stand-in, App. A.2).

The paper's Table 10 compares the Multi-norm Zonotope against GeoCert, a
*complete* verifier computing exact pointwise robustness of small
fully-connected ReLU networks. GeoCert's polytope-walking code is not
reproducible offline, so this module provides a complete method of the same
family: **branch-and-bound over ReLU activation patterns**.

* Internal nodes are bounded by a *pattern-conditioned zonotope*: ReLUs
  fixed active/inactive propagate exactly (identity / zero), free ReLUs use
  the usual minimal-area transformer. A branch's bound ignores the cell's
  sign constraints, which is sound because the branches jointly cover the
  region (every concrete input matches some branch's pattern).
* At a leaf every ReLU is fixed, the network restricted to the cell is
  affine, and the margin is minimized *exactly* over the input region
  intersected with the cell polytope — a linear program for ℓ∞ regions
  (``scipy.optimize.linprog``) and a ball-constrained LP solved with SLSQP
  for ℓ2.

Like GeoCert, the method certifies (nearly) the true robust radius at a
cost orders of magnitude above one abstract pass — the contrast Table 10
reports. A node budget bounds worst cases; exhausting it returns ``None``
("unknown"), which radius searches treat as failure, keeping reported radii
sound.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog, minimize

from ..zonotope import MultiNormZonotope
from ..zonotope.elementwise import relu as relu_transformer

__all__ = ["BranchAndBoundVerifier"]


def _conditioned_relu(z, pattern_layer):
    """ReLU transformer with fixed neurons handled exactly.

    ``pattern_layer``: int array over the layer's neurons, +1 fixed active
    (identity), -1 fixed inactive (zero), 0 free (minimal-area transformer).
    """
    out = relu_transformer(z)
    fixed_on = pattern_layer == 1
    fixed_off = pattern_layer == -1
    if not (fixed_on.any() or fixed_off.any()):
        return out
    center = np.where(fixed_off, 0.0,
                      np.where(fixed_on, z.center, out.center))
    phi = out.phi.copy()
    eps = out.eps.copy()
    # Fixed-active neurons propagate exactly (identity); fresh transformer
    # symbols (rows past z's count) must not touch them.
    phi[:, fixed_on] = 0.0
    eps[:, fixed_on] = 0.0
    phi[: z.n_phi, fixed_on] = z.phi[:, fixed_on]
    eps[: z.n_eps, fixed_on] = z.eps[:, fixed_on]
    phi[:, fixed_off] = 0.0
    eps[:, fixed_off] = 0.0
    return MultiNormZonotope(center, phi, eps, z.p)


class _Subproblem:
    """One branch-and-bound node: a partial activation pattern."""

    __slots__ = ("pattern",)

    def __init__(self, pattern):
        self.pattern = pattern  # list of int8 arrays; 0 = free

    def split(self, layer, neuron):
        """Two children fixing ``neuron`` active / inactive."""
        on = [p.copy() for p in self.pattern]
        off = [p.copy() for p in self.pattern]
        on[layer][neuron] = 1
        off[layer][neuron] = -1
        return _Subproblem(on), _Subproblem(off)

    def n_free(self):
        """Number of still-unfixed ReLUs."""
        return sum(int((p == 0).sum()) for p in self.pattern)


class BranchAndBoundVerifier:
    """Complete (budgeted) robustness verifier for :class:`MLPClassifier`.

    Parameters
    ----------
    model:
        An ``MLPClassifier`` (ReLU hidden layers + linear output).
    node_limit:
        Maximum branch-and-bound nodes per margin query; exceeding it
        returns ``None`` (unknown).
    """

    def __init__(self, model, node_limit=600):
        self.model = model
        self.node_limit = node_limit
        self.layers = model.weights_and_biases()

    # ------------------------------------------------ conditioned zonotope
    def _node_bound(self, sub, region, margin_w, margin_b):
        """(margin lower bound, per-layer pre-activation bounds)."""
        z = region
        pre_bounds = []
        for layer_index, (weight, bias) in enumerate(self.layers[:-1]):
            pre = z.matmul_const(weight) + bias
            pre_bounds.append(pre.bounds())
            z = _conditioned_relu(pre, sub.pattern[layer_index])
        margin_z = z.matmul_const(margin_w.reshape(-1, 1))
        lower = margin_z.bounds()[0].reshape(-1)[0] + margin_b
        return float(lower), pre_bounds

    # ----------------------------------------------------------- leaf solve
    def _cell_affine(self, pattern):
        """Affine form of the network on a fully fixed cell.

        Returns (per-layer (W_z, b_z) pre-activation affine maps in terms of
        the input, final (W_out, b_out)).
        """
        w_cur = np.eye(self.layers[0][0].shape[0])
        b_cur = np.zeros(self.layers[0][0].shape[0])
        pre_maps = []
        for layer_index, (weight, bias) in enumerate(self.layers[:-1]):
            w_z = w_cur @ weight
            b_z = b_cur @ weight + bias
            pre_maps.append((w_z, b_z))
            active = (pattern[layer_index] == 1).astype(np.float64)
            w_cur = w_z * active
            b_cur = b_z * active
        weight, bias = self.layers[-1]
        return pre_maps, (w_cur @ weight, b_cur @ weight + bias)

    def _leaf_solve(self, sub, center, radius, p, margin_w_out, margin_b_out):
        """Exact min margin over region ∩ cell; (value, x*) or None.

        ``None`` means the cell does not intersect the region (prune).
        """
        pre_maps, (w_out, b_out) = self._cell_affine(sub.pattern)
        objective = w_out @ margin_w_out
        obj_const = b_out @ margin_w_out + margin_b_out

        rows, rhs = [], []
        for layer_index, (w_z, b_z) in enumerate(pre_maps):
            pat = sub.pattern[layer_index]
            on = pat == 1
            off = pat == -1
            # active: z >= 0  ->  -w x <= b ; inactive: z <= 0 -> w x <= -b.
            if on.any():
                rows.append(-w_z[:, on].T)
                rhs.append(b_z[on])
            if off.any():
                rows.append(w_z[:, off].T)
                rhs.append(-b_z[off])
        a_ub = np.vstack(rows) if rows else None
        b_ub = np.concatenate(rhs) if rhs else None

        if p == np.inf:
            bounds = [(c - radius, c + radius) for c in center]
            res = linprog(objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                          method="highs")
            if not res.success:
                return None
            return float(res.fun + obj_const), res.x

        constraints = []
        if a_ub is not None:
            constraints.append({
                "type": "ineq",
                "fun": lambda v: b_ub - a_ub @ v,
                "jac": lambda v: -a_ub,
            })
        constraints.append({
            "type": "ineq",
            "fun": lambda v: radius ** 2 - np.sum((v - center) ** 2),
            "jac": lambda v: -2.0 * (v - center),
        })
        res = minimize(lambda v: objective @ v, center.copy(),
                       jac=lambda v: objective, constraints=constraints,
                       method="SLSQP",
                       options={"maxiter": 200, "ftol": 1e-9})
        if not res.success:
            # SLSQP reports infeasibility as failure; verify before pruning.
            feasible = (np.sum((res.x - center) ** 2) <= radius ** 2 + 1e-9
                        and (a_ub is None
                             or np.all(a_ub @ res.x <= b_ub + 1e-7)))
            if not feasible:
                return None
        return float(objective @ res.x + obj_const), res.x

    # --------------------------------------------------------------- queries
    def margin_is_positive(self, center, radius, p, true_label, other_label):
        """True/False/None: does min margin stay positive over the region?"""
        p = float(p)
        if p not in (2.0, np.inf):
            raise ValueError("complete verifier supports p in {2, inf}")
        center = np.asarray(center, dtype=np.float64).reshape(-1)
        region = MultiNormZonotope.from_lp_ball(center, radius, p)
        weight, bias = self.layers[-1]
        margin_w = weight[:, true_label] - weight[:, other_label]
        margin_b = bias[true_label] - bias[other_label]
        class_selector = (np.eye(weight.shape[1])[true_label]
                          - np.eye(weight.shape[1])[other_label])

        root = _Subproblem([np.zeros(w.shape[1], dtype=np.int8)
                            for w, _ in self.layers[:-1]])
        stack = [root]
        visited = 0
        while stack:
            sub = stack.pop()
            visited += 1
            if visited > self.node_limit:
                return None
            lower, pre_bounds = self._node_bound(sub, region, margin_w,
                                                 margin_b)
            if lower > 0:
                continue
            branch = self._pick_branch(sub, pre_bounds)
            if branch is None:
                # All remaining free neurons are sign-stable on this branch;
                # complete the pattern with their stable signs and solve the
                # affine cell exactly.
                completed = self._complete_pattern(sub, pre_bounds)
                solved = self._leaf_solve(completed, center, radius, p,
                                          class_selector, 0.0)
                if solved is None:
                    continue  # cell misses the region
                value, x_star = solved
                if value > 1e-9:
                    continue
                prediction = int(self.model.predict(x_star.reshape(1, -1))[0])
                if prediction != true_label:
                    return False
                # Minimizer sits numerically on the decision boundary; the
                # region is not strictly certifiable.
                return False
            stack.extend(sub.split(*branch))
        return True

    @staticmethod
    def _complete_pattern(sub, pre_bounds):
        """Fix stable free neurons to their IBP-certain sign."""
        pattern = [p.copy() for p in sub.pattern]
        for layer, (z_lo, z_hi) in enumerate(pre_bounds):
            free = pattern[layer] == 0
            pattern[layer][free & (z_lo >= 0)] = 1
            pattern[layer][free & (z_hi <= 0)] = -1
            # Anything still free crosses zero but was not picked: treat as
            # inactive (its exact sign constraint is added to the cell).
            pattern[layer][pattern[layer] == 0] = -1
        return _Subproblem(pattern)

    @staticmethod
    def _pick_branch(sub, pre_bounds):
        """Free neuron with the widest sign-crossing pre-activation."""
        best, best_width = None, 0.0
        for layer, (z_lo, z_hi) in enumerate(pre_bounds):
            free = sub.pattern[layer] == 0
            crossing = free & (z_lo < 0) & (z_hi > 0)
            for neuron in np.flatnonzero(crossing):
                width = min(-z_lo[neuron], z_hi[neuron])
                if width > best_width:
                    best, best_width = (layer, int(neuron)), width
        return best

    def certify(self, x, radius, p, true_label=None):
        """Certify all class margins; True / False / None (budget hit)."""
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        if true_label is None:
            true_label = int(self.model.predict(x.reshape(1, -1))[0])
        unknown = False
        for other in range(self.model.n_classes):
            if other == true_label:
                continue
            verdict = self.margin_is_positive(x, radius, p, true_label,
                                              other)
            if verdict is False:
                return False
            unknown = unknown or verdict is None
        return None if unknown else True

    def max_certified_radius(self, x, p, true_label=None, initial=0.05,
                             n_iterations=10):
        """Binary search on the certified radius (unknown counts as fail)."""
        from ..verify.radius import binary_search_radius

        def predicate(radius):
            return self.certify(x, radius, p, true_label=true_label) is True

        return binary_search_radius(predicate, initial=initial,
                                    n_iterations=n_iterations)
