"""CROWN-style linear-bound verifier for Transformers (the paper's baseline).

Reimplementation of the relaxation family of Shi et al. (ICLR 2020),
"Robustness Verification for Transformers", which DeepT compares against:

* every graph node gets linear lower/upper bounds on its elements by
  *backsubstitution*: an objective's coefficients are pushed backwards
  through the graph — exactly through linear ops, through relaxation planes
  at nonlinear and bilinear (McCormick) nodes — until the input, where the
  ℓp region is concretized via the dual norm;
* ``backsub_depth`` bounds how far the substitution walks before
  concretizing against stored interval bounds. Unlimited depth is
  **CROWN-Backward** (precise, superlinearly slow in depth); a small depth
  is **CROWN-BaF** ("backward & forward": backsubstitution stopped early,
  much faster, precision degrading with depth — the behaviour Tables 1-3
  exhibit); depth 0 degenerates to pure interval propagation (IBP).

Every node's stored bounds are the intersection of IBP and backsubstituted
bounds, which keeps the reciprocal's positivity precondition robust.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..verify.guards import certified_from_margin
from .graph import build_transformer_graph, interval_propagate
from .relaxations import unary_relaxation, mul_relaxation

__all__ = ["LpBallInputRegion", "BoxInputRegion", "CrownVerifier",
           "BACKWARD_UNLIMITED"]

BACKWARD_UNLIMITED = 10 ** 9


def _sanitize_planes(a_x, a_z, gamma, fallback_constant):
    """Replace non-finite McCormick planes by constant interval planes."""
    bad = ~(np.isfinite(a_x) & np.isfinite(a_z) & np.isfinite(gamma))
    if not np.any(bad):
        return a_x, a_z, gamma
    a_x = np.where(bad, 0.0, a_x)
    a_z = np.where(bad, 0.0, a_z)
    gamma = np.where(bad, np.broadcast_to(fallback_constant, gamma.shape),
                     gamma)
    return a_x, a_z, gamma


def _masked_dot(coeffs, values):
    """Sum of coeffs*values treating 0 * inf as 0 (vacuous-plane guard)."""
    product = np.where(coeffs != 0.0, coeffs * values, 0.0)
    axes = tuple(range(1, product.ndim))
    return product.sum(axis=axes)


class LpBallInputRegion:
    """ℓp ball of ``radius`` around (masked coordinates of) the input."""

    def __init__(self, center, radius, p, perturbed_mask=None):
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)
        self.p = float(p)
        if perturbed_mask is None:
            perturbed_mask = np.ones(self.center.shape, dtype=bool)
        self.mask = np.asarray(perturbed_mask, dtype=bool)

    def q(self):
        """Dual exponent of the region's p."""
        if self.p == 1.0:
            return np.inf
        if self.p == np.inf:
            return 1.0
        return self.p / (self.p - 1.0)

    def interval(self):
        """Elementwise input interval (for IBP seeding)."""
        spread = np.where(self.mask, self.radius, 0.0)
        return self.center - spread, self.center + spread

    def concretize(self, coeffs):
        """(min, max) of ``sum coeffs * x`` over the region, per objective.

        ``coeffs`` has shape (n_obj, *input_shape).
        """
        base = _masked_dot(coeffs, self.center)
        masked = coeffs * self.mask
        flat = masked.reshape(coeffs.shape[0], -1)
        q = self.q()
        if q == 1.0:
            dual = np.abs(flat).sum(axis=1)
        elif q == np.inf:
            dual = np.abs(flat).max(axis=1)
        else:
            dual = (np.abs(flat) ** q).sum(axis=1) ** (1.0 / q)
        spread = self.radius * dual
        return base - spread, base + spread


class BoxInputRegion:
    """Per-coordinate box (synonym attack regions)."""

    def __init__(self, center, radius_per_coord):
        self.center = np.asarray(center, dtype=np.float64)
        self.radii = np.asarray(radius_per_coord, dtype=np.float64)

    def interval(self):
        """Elementwise input interval (IBP seed)."""
        return self.center - self.radii, self.center + self.radii

    def concretize(self, coeffs):
        """(min, max) of ``sum coeffs * x`` over the box, per objective."""
        base = _masked_dot(coeffs, self.center)
        spread = _masked_dot(np.abs(coeffs), self.radii)
        return base - spread, base + spread


@dataclass
class CrownStats:
    """Bookkeeping for the scaling comparisons (Tables 1-5)."""

    backsub_nodes: int = 0
    seconds: float = 0.0


class _BacksubEngine:
    """One backsubstitution pass from an objective node."""

    def __init__(self, graph, region, depth):
        self.graph = graph
        self.region = region
        self.depth = depth

    def lower_bounds(self, node, objective):
        """Lower bounds of ``objective @ vec(node)`` per objective row.

        ``objective``: (n_obj, node.size). Upper bounds are obtained by the
        caller via negation.
        """
        n_obj = objective.shape[0]
        coeffs = {node.index: objective.reshape((n_obj,) + node.shape)}
        budget = {node.index: self.depth}
        constant = np.zeros(n_obj)
        visited = 0

        with np.errstate(over="ignore", invalid="ignore"):
            return self._run(node, coeffs, budget, constant, visited)

    def _run(self, node, coeffs, budget, constant, visited):
        for current in reversed(self.graph.nodes[: node.index + 1]):
            lam = coeffs.pop(current.index, None)
            if lam is None:
                continue
            visited += 1
            if current.op == "input":
                lo, _ = self.region.concretize(lam)
                constant += lo
                continue
            if budget.get(current.index, 0) <= 0:
                constant += self._concretize_frontier(lam, current)
                continue
            self._push(current, lam, coeffs, constant, budget)
        self.visited = visited
        return constant

    # ------------------------------------------------------------ internals
    @staticmethod
    def _accumulate(coeffs, parent, value):
        if parent.index in coeffs:
            coeffs[parent.index] = coeffs[parent.index] + value
        else:
            coeffs[parent.index] = value

    @staticmethod
    def _concretize_frontier(lam, node):
        pos = np.maximum(lam, 0.0)
        neg = np.minimum(lam, 0.0)
        return _masked_dot(pos, node.lower) + _masked_dot(neg, node.upper)

    def _push(self, node, lam, coeffs, constant, budget):
        """Push objective coefficients one op backwards (lower-bound mode)."""
        parents = node.parents
        remaining = budget.get(node.index, 0) - 1
        for parent in parents:
            budget[parent.index] = max(budget.get(parent.index, 0), remaining)

        if node.op == "affine":
            w = node.params["weight"]
            self._accumulate(coeffs, parents[0], lam @ w.T)
            if node.params["bias"] is not None:
                constant += _masked_dot(lam, node.params["bias"])
        elif node.op == "scale_shift":
            self._accumulate(coeffs, parents[0], lam * node.params["scale"])
            constant += _masked_dot(lam, node.params["shift"])
        elif node.op == "add":
            self._accumulate(coeffs, parents[0], lam)
            self._accumulate(coeffs, parents[1], lam)
        elif node.op == "transpose":
            self._accumulate(coeffs, parents[0], np.swapaxes(lam, 1, 2))
        elif node.op == "slice_rows":
            full = np.zeros((lam.shape[0],) + parents[0].shape)
            full[:, node.params["start"]: node.params["stop"]] = lam
            self._accumulate(coeffs, parents[0], full)
        elif node.op == "concat_last":
            offset = 0
            for parent in parents:
                width = parent.shape[-1]
                self._accumulate(coeffs, parent,
                                 lam[..., offset: offset + width])
                offset += width
        elif node.op in ("relu", "tanh", "exp", "reciprocal", "rsqrt",
                         "gelu"):
            parent = parents[0]
            a_l, b_l, a_u, b_u = unary_relaxation(node.op, parent.lower,
                                                  parent.upper, node.params)
            # Elementwise fallback to interval planes where the relaxation
            # is non-finite (exp overflow on huge regions).
            bad_l = ~(np.isfinite(a_l) & np.isfinite(b_l))
            a_l = np.where(bad_l, 0.0, a_l)
            b_l = np.where(bad_l, node.lower, b_l)
            bad_u = ~(np.isfinite(a_u) & np.isfinite(b_u))
            a_u = np.where(bad_u, 0.0, a_u)
            b_u = np.where(bad_u, node.upper, b_u)
            pos = np.maximum(lam, 0.0)
            neg = np.minimum(lam, 0.0)
            self._accumulate(coeffs, parent, pos * a_l + neg * a_u)
            constant += _masked_dot(pos, b_l) + _masked_dot(neg, b_u)
        elif node.op == "mul":
            x, z = parents
            al_x, al_z, gl, au_x, au_z, gu = mul_relaxation(
                x.lower, x.upper, z.lower, z.upper)
            al_x, al_z, gl = _sanitize_planes(al_x, al_z, gl, node.lower)
            au_x, au_z, gu = _sanitize_planes(au_x, au_z, gu, node.upper)
            pos = np.maximum(lam, 0.0)
            neg = np.minimum(lam, 0.0)
            self._accumulate(coeffs, x, pos * al_x + neg * au_x)
            self._accumulate(coeffs, z, pos * al_z + neg * au_z)
            constant += _masked_dot(pos, gl) + _masked_dot(neg, gu)
        elif node.op == "matmul":
            x, z = parents  # (n, k) @ (k, m)
            lx = x.lower[:, :, None]
            ux = x.upper[:, :, None]
            lz = z.lower[None, :, :]
            uz = z.upper[None, :, :]
            al_x, al_z, gl, au_x, au_z, gu = mul_relaxation(lx, ux, lz, uz)
            with np.errstate(invalid="ignore", over="ignore"):
                products = np.stack([lx * lz, lx * uz, ux * lz, ux * uz])
                prod_lower = np.where(
                    np.isnan(np.fmin.reduce(products)), -np.inf,
                    np.fmin.reduce(products))
                prod_upper = np.where(
                    np.isnan(np.fmax.reduce(products)), np.inf,
                    np.fmax.reduce(products))
            al_x, al_z, gl = _sanitize_planes(al_x, al_z, gl, prod_lower)
            au_x, au_z, gu = _sanitize_planes(au_x, au_z, gu, prod_upper)
            pos = np.maximum(lam, 0.0)
            neg = np.minimum(lam, 0.0)
            # Coefficient on x[i, t]: sum_j lam[o, i, j] * a_x[i, t, j].
            x_coeff = (np.einsum("oij,itj->oit", pos, al_x)
                       + np.einsum("oij,itj->oit", neg, au_x))
            z_coeff = (np.einsum("oij,itj->otj", pos, al_z)
                       + np.einsum("oij,itj->otj", neg, au_z))
            self._accumulate(coeffs, x, x_coeff)
            self._accumulate(coeffs, z, z_coeff)
            # gamma[i, t, j] enters y[i, j] summed over t.
            constant += (np.einsum("oij,itj->o", pos, gl)
                         + np.einsum("oij,itj->o", neg, gu))
        else:
            raise ValueError(f"cannot backsubstitute through {node.op}")


class CrownVerifier:
    """Linear-bound verifier with configurable backsubstitution depth.

    Parameters
    ----------
    model:
        A :class:`TransformerClassifier`-shaped network.
    backsub_depth:
        Graph-op horizon of each backsubstitution.
        ``BACKWARD_UNLIMITED`` reproduces CROWN-Backward; the default 30
        (roughly one encoder layer's worth of graph ops) reproduces
        CROWN-BaF's early stopping; 0 is IBP.
    """

    def __init__(self, model, backsub_depth=30):
        self.model = model
        self.backsub_depth = backsub_depth
        self.stats = CrownStats()

    # ---------------------------------------------------------------- bounds
    def _bound_all(self, graph, region):
        """Intersect every node's IBP bounds with backsubstituted ones."""
        lo, hi = region.interval()
        interval_propagate(graph, lo, hi)
        if self.backsub_depth <= 0:
            return
        needs_tight = {"relu", "tanh", "exp", "reciprocal", "rsqrt",
                       "gelu", "mul", "matmul"}
        engine = _BacksubEngine(graph, region, self.backsub_depth)
        bound_parents = set()
        for node in graph.nodes:
            if node.op in needs_tight:
                for parent in node.parents:
                    bound_parents.add(parent.index)
        for node in graph.nodes:
            if node.index not in bound_parents or node.op == "input":
                continue
            identity = np.eye(node.size)
            # One walk bounds both directions: rows [I; -I].
            stacked = engine.lower_bounds(node,
                                          np.vstack([identity, -identity]))
            lower = stacked[: node.size]
            upper = -stacked[node.size:]
            self.stats.backsub_nodes += 1
            node.lower = np.maximum(node.lower, lower.reshape(node.shape))
            node.upper = np.minimum(node.upper, upper.reshape(node.shape))
            # Numerical guard: keep lower <= upper.
            node.lower, node.upper = (np.minimum(node.lower, node.upper),
                                      np.maximum(node.lower, node.upper))
            clip = node.params.get("clip")
            if clip is not None:
                node.lower = np.clip(node.lower, clip[0], clip[1])
                node.upper = np.clip(node.upper, clip[0], clip[1])

    def margin_lower_bound(self, region, true_label, n_tokens=None,
                           n_classes=None):
        """Certified lower bound of min_other (y_true - y_other)."""
        start = time.perf_counter()
        n_tokens = n_tokens or region.center.shape[0]
        graph, _, logits = build_transformer_graph(self.model, n_tokens)
        self._bound_all(graph, region)
        n_classes = n_classes or logits.shape[-1]
        objective_rows = []
        for other in range(n_classes):
            if other == true_label:
                continue
            row = np.zeros(logits.size)
            row[true_label] = 1.0
            row[other] = -1.0
            objective_rows.append(row)
        engine = _BacksubEngine(graph, region,
                                max(self.backsub_depth, 1))
        lower = engine.lower_bounds(logits, np.stack(objective_rows))
        # The margin is also bounded by the stored (IBP-intersected) logits
        # intervals; take the better of the two, as any CROWN
        # implementation seeded with interval bounds does.
        logits_lower = logits.lower.reshape(-1)
        logits_upper = logits.upper.reshape(-1)
        interval_margins = [
            logits_lower[true_label] - logits_upper[other]
            for other in range(n_classes) if other != true_label]
        best = max(float(lower.min()), float(min(interval_margins)))
        self.stats.seconds += time.perf_counter() - start
        return best

    # ----------------------------------------------------------- public API
    def certify_region(self, region, true_label):
        """True iff the backsubstituted margin bound is positive."""
        return certified_from_margin(
            self.margin_lower_bound(region, true_label))

    def certify_word_perturbation(self, token_ids, position, radius, p,
                                  true_label=None):
        """T1 certification of one word's ℓp ball."""
        if true_label is None:
            true_label = self.model.predict(token_ids)
        embeddings = self.model.embed_array(token_ids)
        mask = np.zeros(embeddings.shape, dtype=bool)
        mask[position] = True
        region = LpBallInputRegion(embeddings, radius, p, mask)
        return self.certify_region(region, true_label)

    def certify_synonym_attack(self, attack, true_label=None):
        """T2 certification of a synonym attack box."""
        if true_label is None:
            true_label = self.model.predict(attack.token_ids)
        region = BoxInputRegion(attack.center, attack.radius)
        return self.certify_region(region, true_label)
