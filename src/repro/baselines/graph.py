"""Computation-graph IR for linear-bound (CROWN-style) verification.

The CROWN baseline of Shi et al. (ICLR 2020) — the paper's main comparator —
propagates *linear* lower/upper bounds through the network and obtains
concrete bounds by backsubstituting towards the input. That requires an
explicit operation graph (the Transformer has residual branches and bilinear
nodes whose two parents must both be tracked), so this module defines a
small IR:

====================  =========================================================
op                    semantics
====================  =========================================================
``input``             the (N, E) embedding matrix under perturbation
``affine``            ``y = x @ W + b`` (last-axis matmul, constant ``W, b``)
``scale_shift``       ``y = a * x + b`` with constant (broadcastable) a, b
``add``               ``y = x1 + x2``
``transpose``         2-D transpose
``slice_rows``        ``y = x[start:stop]``
``concat_last``       concatenate several parents along the last axis
``relu/tanh/exp/
reciprocal``          elementwise nonlinearities
``mul``               ``y = x1 * x2`` elementwise (bilinear; same shape)
``matmul``            ``y = x1 @ x2`` (bilinear; both operands are nodes)
====================  =========================================================

Linear constructs (mean-subtraction, sums, broadcasts) are expressed through
``affine`` with suitable constant matrices. Every node carries interval
bounds filled in by interval propagation (:func:`interval_propagate`), which
the relaxations consume and which backsubstitution intersects with.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Node", "Graph", "build_transformer_graph", "interval_propagate"]


class Node:
    """One operation in the graph."""

    __slots__ = ("index", "op", "parents", "params", "shape",
                 "lower", "upper")

    def __init__(self, index, op, parents, params, shape):
        self.index = index
        self.op = op
        self.parents = parents
        self.params = params
        self.shape = tuple(shape)
        self.lower = None
        self.upper = None

    @property
    def size(self):
        """Number of scalar elements in the node."""
        return int(np.prod(self.shape))

    def __repr__(self):
        return f"Node({self.index}, {self.op}, shape={self.shape})"


class Graph:
    """A topologically ordered list of nodes with a single input."""

    def __init__(self):
        self.nodes = []

    def _add(self, op, parents, params, shape):
        node = Node(len(self.nodes), op, parents, params, shape)
        self.nodes.append(node)
        return node

    # ------------------------------------------------------------- builders
    def input(self, shape):
        """The (single) input node holding the perturbed embeddings."""
        return self._add("input", [], {}, shape)

    def affine(self, x, weight, bias=None):
        """``y = x @ W (+ b)`` with constant parameters."""
        weight = np.asarray(weight, dtype=np.float64)
        shape = x.shape[:-1] + (weight.shape[1],)
        bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        return self._add("affine", [x], {"weight": weight, "bias": bias},
                         shape)

    def scale_shift(self, x, scale=1.0, shift=0.0):
        """``y = a * x + b`` with constant (broadcastable) a, b."""
        scale = np.broadcast_to(np.asarray(scale, dtype=np.float64),
                                x.shape).copy()
        shift = np.broadcast_to(np.asarray(shift, dtype=np.float64),
                                x.shape).copy()
        return self._add("scale_shift", [x],
                         {"scale": scale, "shift": shift}, x.shape)

    def add(self, x1, x2):
        """Elementwise sum of two nodes (residual connections)."""
        if x1.shape != x2.shape:
            raise ValueError(f"add shape mismatch {x1.shape} vs {x2.shape}")
        return self._add("add", [x1, x2], {}, x1.shape)

    def transpose(self, x):
        """2-D transpose (for the K operand of Q K^T)."""
        if len(x.shape) != 2:
            raise ValueError("transpose expects a 2-D node")
        return self._add("transpose", [x], {}, (x.shape[1], x.shape[0]))

    def slice_rows(self, x, start, stop):
        """Row slice ``x[start:stop]`` (pooling picks row 0)."""
        return self._add("slice_rows", [x], {"start": start, "stop": stop},
                         (stop - start,) + x.shape[1:])

    def concat_last(self, xs):
        """Concatenate parents along the last axis (head stacking)."""
        width = sum(x.shape[-1] for x in xs)
        lead = xs[0].shape[:-1]
        for x in xs:
            if x.shape[:-1] != lead:
                raise ValueError("concat_last leading-shape mismatch")
        return self._add("concat_last", list(xs), {}, lead + (width,))

    def unary(self, op, x, **params):
        """Elementwise nonlinearity node (relu/tanh/exp/reciprocal/rsqrt)."""
        if op not in ("relu", "tanh", "exp", "reciprocal", "rsqrt",
                      "gelu"):
            raise ValueError(f"unknown unary op {op}")
        return self._add(op, [x], dict(params), x.shape)

    def mul(self, x1, x2, clip=None):
        """Elementwise product; ``clip=(lo, hi)`` declares known output
        bounds (e.g. softmax outputs always lie in [0, 1])."""
        if x1.shape != x2.shape:
            raise ValueError(f"mul shape mismatch {x1.shape} vs {x2.shape}")
        return self._add("mul", [x1, x2], {"clip": clip}, x1.shape)

    def matmul(self, x1, x2):
        """Bilinear matrix product of two *nodes* (both under perturbation)."""
        if len(x1.shape) != 2 or len(x2.shape) != 2 \
                or x1.shape[1] != x2.shape[0]:
            raise ValueError(f"matmul shapes {x1.shape} @ {x2.shape}")
        return self._add("matmul", [x1, x2], {},
                         (x1.shape[0], x2.shape[1]))

    # ------------------------------------------------ derived linear helpers
    def mean_subtract_last(self, x):
        """``y = x - mean(x, axis=-1)`` as an affine node."""
        dim = x.shape[-1]
        matrix = np.eye(dim) - np.full((dim, dim), 1.0 / dim)
        return self.affine(x, matrix)

    def sum_last(self, x):
        """Sum over the last axis, keeping it as size 1."""
        dim = x.shape[-1]
        return self.affine(x, np.ones((dim, 1)))

    def repeat_last(self, x, times):
        """Broadcast a trailing size-1 axis to ``times``."""
        if x.shape[-1] != 1:
            raise ValueError("repeat_last expects trailing size 1")
        return self.affine(x, np.ones((1, times)))


def build_transformer_graph(model, n_tokens):
    """Build the verification graph of a Transformer classifier.

    Mirrors ``TransformerClassifier.forward_from_embeddings`` (same layers,
    same pooling, final logits affine) for a fixed input length. The CROWN
    softmax is the primitive composition exp -> sum -> reciprocal -> mul
    (Section 5.4: the baseline does *not* use DeepT's
    ``1/sum exp(nu_j - nu_i)`` rewrite).

    Returns ``(graph, input_node, output_node)`` where the output node holds
    the logits with shape (1, n_classes).
    """
    return GraphBuilder(model, n_tokens).build()


class GraphBuilder:
    """Builds the verification graph for a fixed input length ``n``."""

    def __init__(self, model, n_tokens):
        self.model = model
        self.n = n_tokens

    def build(self):
        """Construct the graph; returns (graph, input_node, logits_node)."""
        model = self.model
        graph = Graph()
        x = graph.input((self.n, model.embed_dim))
        current = x
        for layer in model.layers:
            current = self._layer(graph, current, layer)
        pooled = graph.slice_rows(current, 0, 1)
        pooled = graph.affine(pooled, model.pool.weight.data,
                              model.pool.bias.data)
        pooled = graph.unary("tanh", pooled)
        logits = graph.affine(pooled, model.classifier.weight.data,
                              model.classifier.bias.data)
        return graph, x, logits

    def _layer(self, graph, x, layer):
        attended = self._attention(graph, x, layer.attention)
        x = self._layer_norm(graph, graph.add(x, attended), layer.norm1)
        ffn = self._feed_forward(graph, x, layer.ffn)
        return self._layer_norm(graph, graph.add(x, ffn), layer.norm2)

    def _attention(self, graph, x, attention):
        heads = []
        for head in attention.heads:
            queries = graph.affine(x, head.w_q.weight.data,
                                   head.w_q.bias.data)
            keys = graph.affine(x, head.w_k.weight.data, head.w_k.bias.data)
            values = graph.affine(x, head.w_v.weight.data,
                                  head.w_v.bias.data)
            scores = graph.matmul(queries, graph.transpose(keys))
            scores = graph.scale_shift(scores, 1.0 / np.sqrt(head.d_k), 0.0)
            weights = self._softmax(graph, scores)
            heads.append(graph.matmul(weights, values))
        stacked = graph.concat_last(heads)
        return graph.affine(stacked, attention.w_o.weight.data,
                            attention.w_o.bias.data)

    def _feed_forward(self, graph, x, ffn):
        hidden = graph.affine(x, ffn.fc1.weight.data, ffn.fc1.bias.data)
        activation = getattr(ffn, "activation", "relu")
        hidden = graph.unary(activation, hidden)
        return graph.affine(hidden, ffn.fc2.weight.data, ffn.fc2.bias.data)

    def _softmax(self, graph, scores):
        """CROWN softmax: exp -> sum -> reciprocal -> mul (Section 5.4)."""
        exps = graph.unary("exp", scores)
        denom = graph.sum_last(exps)
        # A sum of exponentials is non-negative regardless of how loose the
        # interval arithmetic gets (inf-contaminated IBP would otherwise
        # report a NaN/-inf lower bound here).
        denom.params["clip"] = (0.0, np.inf)
        recip = graph.unary("reciprocal", denom)
        recip_full = graph.repeat_last(recip, scores.shape[-1])
        return graph.mul(exps, recip_full, clip=(0.0, 1.0))

    def _layer_norm(self, graph, x, norm):
        centered = graph.mean_subtract_last(x)
        if norm.divide_by_std:
            squares = graph.mul(centered, centered, clip=(0.0, np.inf))
            dim = centered.shape[-1]
            variance = graph.affine(squares, np.full((dim, 1), 1.0 / dim))
            inv_std = graph.unary("rsqrt", variance, shift=norm.eps)
            inv_full = graph.repeat_last(inv_std, dim)
            centered = graph.mul(centered, inv_full)
        return graph.scale_shift(centered, norm.gamma.data, norm.beta.data)



def interval_propagate(graph, input_lower, input_upper):
    """Fill every node's interval bounds by interval arithmetic (IBP).

    These bounds seed the relaxations and are intersected with the
    backsubstituted ones; they also make the reciprocal's positivity
    precondition robust (the IBP bound of a sum of exponentials is always
    positive). NaNs arising from inf arithmetic (exp overflow on very large
    regions) are sanitized to the vacuous bounds -inf/+inf, keeping the
    propagation sound and well-defined at any radius.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        for node in graph.nodes:
            _node_interval(node, input_lower, input_upper)
            node.lower = np.where(np.isnan(node.lower), -np.inf, node.lower)
            node.upper = np.where(np.isnan(node.upper), np.inf, node.upper)
            clip = node.params.get("clip")
            if clip is not None:
                node.lower = np.clip(node.lower, clip[0], clip[1])
                node.upper = np.clip(node.upper, clip[0], clip[1])
    return graph


def _node_interval(node, input_lower, input_upper):
    parents = node.parents
    if node.op == "input":
        node.lower = np.asarray(input_lower, dtype=np.float64)
        node.upper = np.asarray(input_upper, dtype=np.float64)
    elif node.op == "affine":
        w = node.params["weight"]
        w_pos = np.maximum(w, 0.0)
        w_neg = np.minimum(w, 0.0)
        node.lower = parents[0].lower @ w_pos + parents[0].upper @ w_neg
        node.upper = parents[0].upper @ w_pos + parents[0].lower @ w_neg
        if node.params["bias"] is not None:
            node.lower = node.lower + node.params["bias"]
            node.upper = node.upper + node.params["bias"]
    elif node.op == "scale_shift":
        a, b = node.params["scale"], node.params["shift"]
        lo = parents[0].lower * a
        hi = parents[0].upper * a
        node.lower = np.minimum(lo, hi) + b
        node.upper = np.maximum(lo, hi) + b
    elif node.op == "add":
        node.lower = parents[0].lower + parents[1].lower
        node.upper = parents[0].upper + parents[1].upper
    elif node.op == "transpose":
        node.lower = parents[0].lower.T
        node.upper = parents[0].upper.T
    elif node.op == "slice_rows":
        rows = slice(node.params["start"], node.params["stop"])
        node.lower = parents[0].lower[rows]
        node.upper = parents[0].upper[rows]
    elif node.op == "concat_last":
        node.lower = np.concatenate([p.lower for p in parents], axis=-1)
        node.upper = np.concatenate([p.upper for p in parents], axis=-1)
    elif node.op == "relu":
        node.lower = np.maximum(parents[0].lower, 0.0)
        node.upper = np.maximum(parents[0].upper, 0.0)
    elif node.op == "tanh":
        node.lower = np.tanh(parents[0].lower)
        node.upper = np.tanh(parents[0].upper)
    elif node.op == "gelu":
        from scipy.stats import norm as _norm
        lo, hi = parents[0].lower, parents[0].upper
        g_lo = lo * _norm.cdf(lo)
        g_hi = hi * _norm.cdf(hi)
        # GELU dips to ~-0.1700 at t* ~ -0.7518; the interval minimum is
        # the dip when [l, u] contains t*, else the smaller endpoint.
        t_star, g_star = -0.7518, -0.17
        contains = (lo <= t_star) & (hi >= t_star)
        node.lower = np.where(contains, g_star, np.minimum(g_lo, g_hi))
        node.upper = np.maximum(g_lo, g_hi)
    elif node.op == "exp":
        node.lower = np.exp(parents[0].lower)
        node.upper = np.exp(parents[0].upper)
    elif node.op == "rsqrt":
        shift = node.params.get("shift", 0.0)
        if np.any(parents[0].lower + shift < 0):
            raise ValueError("rsqrt over a negative interval")
        with np.errstate(divide="ignore"):
            node.lower = 1.0 / np.sqrt(parents[0].upper + shift)
            node.upper = 1.0 / np.sqrt(np.maximum(parents[0].lower + shift,
                                                  0.0))
    elif node.op == "reciprocal":
        # A zero lower bound (exp underflow in the softmax denominator)
        # soundly yields an infinite upper bound; negative bounds would be
        # a real precondition violation.
        if np.any(parents[0].lower < 0):
            raise ValueError("reciprocal over a negative interval")
        with np.errstate(divide="ignore"):
            node.lower = 1.0 / parents[0].upper
            node.upper = 1.0 / parents[0].lower
    elif node.op == "mul":
        products = [parents[0].lower * parents[1].lower,
                    parents[0].lower * parents[1].upper,
                    parents[0].upper * parents[1].lower,
                    parents[0].upper * parents[1].upper]
        # inf * 0 produces NaN; fmin/fmax ignore NaNs so a defined product
        # wins, and all-NaN entries are sanitized by the caller.
        node.lower = np.fmin(np.fmin(products[0], products[1]),
                             np.fmin(products[2], products[3]))
        node.upper = np.fmax(np.fmax(products[0], products[1]),
                             np.fmax(products[2], products[3]))
    elif node.op == "matmul":
        a_lo, a_hi = parents[0].lower, parents[0].upper
        b_lo, b_hi = parents[1].lower, parents[1].upper
        # Center/radius formulation of interval matmul.
        a_c, a_r = 0.5 * (a_lo + a_hi), 0.5 * (a_hi - a_lo)
        b_c, b_r = 0.5 * (b_lo + b_hi), 0.5 * (b_hi - b_lo)
        center = a_c @ b_c
        radius = np.abs(a_c) @ b_r + a_r @ np.abs(b_c) + a_r @ b_r
        node.lower = center - radius
        node.upper = center + radius
    else:
        raise ValueError(f"unknown op {node.op}")
