"""Baseline verifiers the paper compares DeepT against."""

from .graph import Graph, Node, build_transformer_graph, interval_propagate
from .crown import (
    CrownVerifier, LpBallInputRegion, BoxInputRegion, BACKWARD_UNLIMITED,
)
from .interval import IntervalVerifier
from .enumeration import (
    EnumerationResult, enumerate_synonym_attack,
    estimate_enumeration_seconds,
)
from .complete import BranchAndBoundVerifier

__all__ = [
    "Graph", "Node", "build_transformer_graph", "interval_propagate",
    "CrownVerifier", "LpBallInputRegion", "BoxInputRegion",
    "BACKWARD_UNLIMITED",
    "IntervalVerifier",
    "EnumerationResult", "enumerate_synonym_attack",
    "estimate_enumeration_seconds",
    "BranchAndBoundVerifier",
]
